(** Backend interface for the interpreter.

    Two implementations ship with the library: [Halo_ckks.Ref_backend]
    (cleartext-tracking with calibrated noise — scales to the paper's
    workloads) and {!Lattice_backend} (real RLWE ciphertexts at
    test-friendly parameters).  Both enforce the same level/scale
    discipline, so a program that runs on one runs on the other.

    Discipline violations raise {!Halo_error.Backend_error} carrying the
    backend's {!name}, the operation and the operand level; decorators such
    as {!Faults} may additionally raise the transient-fault exceptions of
    {!Halo_error}, which the resilient runtime retries. *)

module type S = sig
  type ct
  type state

  val name : string
  (** Short identifier used in error sites and reports, e.g. ["ref"],
      ["lattice"], ["faulty+ref"]. *)

  val slots : state -> int
  val max_level : state -> int
  val level : state -> ct -> int
  val encrypt : state -> level:int -> float array -> ct
  val decrypt : state -> ct -> float array
  val addcc : state -> ct -> ct -> ct
  val subcc : state -> ct -> ct -> ct
  val addcp : state -> ct -> float array -> ct
  val multcc : state -> ct -> ct -> ct
  val multcp : state -> ct -> float array -> ct
  val rotate : state -> ct -> offset:int -> ct

  val rotate_many : state -> ct -> offsets:int list -> ct list
  (** Grouped rotation of one ciphertext, one result per offset (offset 0
      returns the input).  Semantically exactly the sequence of single
      [rotate] calls — backends with hoistable key-switch work (the
      lattice backend) share the digit decomposition across the group;
      others may simply iterate [rotate].  Results must be bit-identical
      to the sequential rotates. *)

  val rot_sum : state -> ct -> terms:(int * float array option) list -> ct
  (** Fused rotate-and-sum of one ciphertext.  Each term is an offset plus
      an optional plaintext coefficient; a weighted group (all [Some])
      computes Σ rescale(coeff ⊙ rot(src)) — each member's multiply and
      rescale are absorbed, so the result sits one level below the source
      at canonical scale — while a pure group (all [None]) computes
      Σ rot(src) level/scale-preserving.  Backends with lazy key switching
      (the lattice backend) share the digit decomposition across members
      and pay a single mod-down; others evaluate the exact per-term
      unfused sequence, keeping fused and unfused runs bit-identical. *)

  val rescale : state -> ct -> ct
  val modswitch : state -> ct -> down:int -> ct
  val bootstrap : state -> ct -> target:int -> ct
  val negate : state -> ct -> ct

  val noise_estimate : state -> ct -> float
  (** The ciphertext's running noise upper bound: an interval-style
      estimate updated by every op with the shared
      {!Halo_cost.Noise_units} table, so it is directly comparable to the
      static {!Halo.Noise_budget} bound.  Reading it must not consume RNG
      or otherwise perturb execution. *)

  val inflate_noise : state -> ct -> by:float -> ct
  (** A copy of the ciphertext with [by] added to its noise bound and the
      payload untouched.  Decorators use this to surface silently injected
      corruption (noise spikes) to the runtime monitor. *)
end
