type t = {
  mutable addcc : int;
  mutable addcp : int;
  mutable subcc : int;
  mutable multcc : int;
  mutable multcp : int;
  mutable rotate : int;
  mutable rescale : int;
  mutable modswitch : int;
  mutable bootstrap : int;
  mutable total_latency_us : float;
  mutable bootstrap_latency_us : float;
  mutable injected_faults : int;
  mutable retries : int;
  mutable checkpoint_restores : int;
  mutable backoff_us : float;
  mutable checkpoint_writes : int;
  mutable checkpoint_bytes : int;
  mutable guard_trips : int;
  mutable key_switches : int;
  mutable hoisted_groups : int;
  mutable decompositions_saved : int;
  mutable deadline_aborts : int;
  mutable key_cache_hits : int;
  mutable key_cache_misses : int;
  mutable key_cache_evictions : int;
  mutable key_cache_regens : int;
  mutable digit_reuses : int;
  mutable lazy_rotsums : int;
  mutable rescues : int;
  mutable rescue_aborts : int;
  mutable replans : int;
}

let create () =
  {
    addcc = 0;
    addcp = 0;
    subcc = 0;
    multcc = 0;
    multcp = 0;
    rotate = 0;
    rescale = 0;
    modswitch = 0;
    bootstrap = 0;
    total_latency_us = 0.0;
    bootstrap_latency_us = 0.0;
    injected_faults = 0;
    retries = 0;
    checkpoint_restores = 0;
    backoff_us = 0.0;
    checkpoint_writes = 0;
    checkpoint_bytes = 0;
    guard_trips = 0;
    key_switches = 0;
    hoisted_groups = 0;
    decompositions_saved = 0;
    deadline_aborts = 0;
    key_cache_hits = 0;
    key_cache_misses = 0;
    key_cache_evictions = 0;
    key_cache_regens = 0;
    digit_reuses = 0;
    lazy_rotsums = 0;
    rescues = 0;
    rescue_aborts = 0;
    replans = 0;
  }

let record t (op : Halo_cost.Cost_model.op) ~level =
  (match op with
   | Halo_cost.Cost_model.Addcc -> t.addcc <- t.addcc + 1
   | Addcp -> t.addcp <- t.addcp + 1
   | Subcc -> t.subcc <- t.subcc + 1
   | Multcc -> t.multcc <- t.multcc + 1
   | Multcp -> t.multcp <- t.multcp + 1
   | Rotate -> t.rotate <- t.rotate + 1
   | Rescale -> t.rescale <- t.rescale + 1
   | Modswitch -> t.modswitch <- t.modswitch + 1
   | Encode -> ());
  t.total_latency_us <-
    t.total_latency_us +. Halo_cost.Cost_model.latency_us op ~level

let record_bootstrap t ~target =
  t.bootstrap <- t.bootstrap + 1;
  let l = Halo_cost.Cost_model.bootstrap_latency_us ~target in
  t.total_latency_us <- t.total_latency_us +. l;
  t.bootstrap_latency_us <- t.bootstrap_latency_us +. l

let record_fault t = t.injected_faults <- t.injected_faults + 1

let record_retry t ~backoff_us =
  t.retries <- t.retries + 1;
  t.backoff_us <- t.backoff_us +. backoff_us

let record_restore t = t.checkpoint_restores <- t.checkpoint_restores + 1

let record_checkpoint_write t ~bytes =
  t.checkpoint_writes <- t.checkpoint_writes + 1;
  t.checkpoint_bytes <- t.checkpoint_bytes + bytes

let record_guard_trip t = t.guard_trips <- t.guard_trips + 1

let record_key_switch t = t.key_switches <- t.key_switches + 1

(* A hoisted group of [size] rotations pays one digit decomposition instead
   of [size]: size - 1 decompositions saved.  Each member still counts as a
   key switch (the apply half runs per offset). *)
let record_hoisted_group t ~size =
  t.hoisted_groups <- t.hoisted_groups + 1;
  t.decompositions_saved <- t.decompositions_saved + (size - 1)

let record_deadline_abort t = t.deadline_aborts <- t.deadline_aborts + 1

(* Key-cache and digit-reuse accounting, folded in from the key set's own
   counters at reporting time (never mid-run: kill/resume stats comparisons
   must not depend on how warm a cache happened to be at the kill point).
   Each digit reuse skips one whole decomposition, so it also counts toward
   [decompositions_saved]. *)
let record_key_cache t ~hits ~misses ~evictions ~regens ~digit_hits =
  t.key_cache_hits <- t.key_cache_hits + hits;
  t.key_cache_misses <- t.key_cache_misses + misses;
  t.key_cache_evictions <- t.key_cache_evictions + evictions;
  t.key_cache_regens <- t.key_cache_regens + regens;
  t.digit_reuses <- t.digit_reuses + digit_hits;
  t.decompositions_saved <- t.decompositions_saved + digit_hits

(* One fused rotate-and-sum executed: the group paid a single mod-down. *)
let record_lazy_rotsum t = t.lazy_rotsums <- t.lazy_rotsums + 1

(* A rescue is an unplanned bootstrap: it counts in the bootstrap totals
   (it IS one) and is charged the rescue latency — bootstrap plus the
   monitor's bookkeeping overhead — on the virtual clock. *)
let record_rescue t ~target =
  t.rescues <- t.rescues + 1;
  t.bootstrap <- t.bootstrap + 1;
  let l = Halo_cost.Cost_model.rescue_latency_us ~target in
  t.total_latency_us <- t.total_latency_us +. l;
  t.bootstrap_latency_us <- t.bootstrap_latency_us +. l

let record_rescue_abort t = t.rescue_aborts <- t.rescue_aborts + 1
let record_replan t = t.replans <- t.replans + 1

let assign ~into src =
  into.addcc <- src.addcc;
  into.addcp <- src.addcp;
  into.subcc <- src.subcc;
  into.multcc <- src.multcc;
  into.multcp <- src.multcp;
  into.rotate <- src.rotate;
  into.rescale <- src.rescale;
  into.modswitch <- src.modswitch;
  into.bootstrap <- src.bootstrap;
  into.total_latency_us <- src.total_latency_us;
  into.bootstrap_latency_us <- src.bootstrap_latency_us;
  into.injected_faults <- src.injected_faults;
  into.retries <- src.retries;
  into.checkpoint_restores <- src.checkpoint_restores;
  into.backoff_us <- src.backoff_us;
  into.checkpoint_writes <- src.checkpoint_writes;
  into.checkpoint_bytes <- src.checkpoint_bytes;
  into.guard_trips <- src.guard_trips;
  into.key_switches <- src.key_switches;
  into.hoisted_groups <- src.hoisted_groups;
  into.decompositions_saved <- src.decompositions_saved;
  into.deadline_aborts <- src.deadline_aborts;
  into.key_cache_hits <- src.key_cache_hits;
  into.key_cache_misses <- src.key_cache_misses;
  into.key_cache_evictions <- src.key_cache_evictions;
  into.key_cache_regens <- src.key_cache_regens;
  into.digit_reuses <- src.digit_reuses;
  into.lazy_rotsums <- src.lazy_rotsums;
  into.rescues <- src.rescues;
  into.rescue_aborts <- src.rescue_aborts;
  into.replans <- src.replans

let merge ~into src =
  into.addcc <- into.addcc + src.addcc;
  into.addcp <- into.addcp + src.addcp;
  into.subcc <- into.subcc + src.subcc;
  into.multcc <- into.multcc + src.multcc;
  into.multcp <- into.multcp + src.multcp;
  into.rotate <- into.rotate + src.rotate;
  into.rescale <- into.rescale + src.rescale;
  into.modswitch <- into.modswitch + src.modswitch;
  into.bootstrap <- into.bootstrap + src.bootstrap;
  into.total_latency_us <- into.total_latency_us +. src.total_latency_us;
  into.bootstrap_latency_us <-
    into.bootstrap_latency_us +. src.bootstrap_latency_us;
  into.injected_faults <- into.injected_faults + src.injected_faults;
  into.retries <- into.retries + src.retries;
  into.checkpoint_restores <-
    into.checkpoint_restores + src.checkpoint_restores;
  into.backoff_us <- into.backoff_us +. src.backoff_us;
  into.checkpoint_writes <- into.checkpoint_writes + src.checkpoint_writes;
  into.checkpoint_bytes <- into.checkpoint_bytes + src.checkpoint_bytes;
  into.guard_trips <- into.guard_trips + src.guard_trips;
  into.key_switches <- into.key_switches + src.key_switches;
  into.hoisted_groups <- into.hoisted_groups + src.hoisted_groups;
  into.decompositions_saved <-
    into.decompositions_saved + src.decompositions_saved;
  into.deadline_aborts <- into.deadline_aborts + src.deadline_aborts;
  into.key_cache_hits <- into.key_cache_hits + src.key_cache_hits;
  into.key_cache_misses <- into.key_cache_misses + src.key_cache_misses;
  into.key_cache_evictions <- into.key_cache_evictions + src.key_cache_evictions;
  into.key_cache_regens <- into.key_cache_regens + src.key_cache_regens;
  into.digit_reuses <- into.digit_reuses + src.digit_reuses;
  into.lazy_rotsums <- into.lazy_rotsums + src.lazy_rotsums;
  into.rescues <- into.rescues + src.rescues;
  into.rescue_aborts <- into.rescue_aborts + src.rescue_aborts;
  into.replans <- into.replans + src.replans

let total_ops t =
  t.addcc + t.addcp + t.subcc + t.multcc + t.multcp + t.rotate + t.rescale
  + t.modswitch + t.bootstrap

let compute_latency_us t = t.total_latency_us -. t.bootstrap_latency_us

let to_string t =
  Printf.sprintf
    "addcc=%d addcp=%d subcc=%d multcc=%d multcp=%d rotate=%d rescale=%d \
     modswitch=%d bootstrap=%d latency=%.0fus (bootstrap %.0fus, %.1f%%)"
    t.addcc t.addcp t.subcc t.multcc t.multcp t.rotate t.rescale t.modswitch
    t.bootstrap t.total_latency_us t.bootstrap_latency_us
    (if t.total_latency_us > 0.0 then
       100.0 *. t.bootstrap_latency_us /. t.total_latency_us
     else 0.0)
  ^ (if t.injected_faults = 0 && t.retries = 0 && t.checkpoint_restores = 0 then
       ""
     else
       Printf.sprintf " faults=%d retries=%d restores=%d backoff=%.0fus"
         t.injected_faults t.retries t.checkpoint_restores t.backoff_us)
  ^ (if t.checkpoint_writes = 0 then ""
     else
       Printf.sprintf " checkpoints=%d (%d bytes)" t.checkpoint_writes
         t.checkpoint_bytes)
  ^ (if t.guard_trips = 0 then "" else Printf.sprintf " guard_trips=%d" t.guard_trips)
  ^ (if t.key_switches = 0 && t.hoisted_groups = 0 then ""
     else
       Printf.sprintf
         " key_switches=%d hoisted_groups=%d decompositions_saved=%d"
         t.key_switches t.hoisted_groups t.decompositions_saved)
  ^ (if t.lazy_rotsums = 0 then ""
     else Printf.sprintf " lazy_rotsums=%d" t.lazy_rotsums)
  ^ (if
       t.key_cache_hits = 0 && t.key_cache_misses = 0
       && t.key_cache_evictions = 0 && t.key_cache_regens = 0
       && t.digit_reuses = 0
     then ""
     else
       Printf.sprintf
         " key_cache_hits=%d key_cache_misses=%d key_cache_evictions=%d \
          key_cache_regens=%d digit_reuses=%d"
         t.key_cache_hits t.key_cache_misses t.key_cache_evictions
         t.key_cache_regens t.digit_reuses)
  ^ (if t.rescues = 0 && t.rescue_aborts = 0 && t.replans = 0 then ""
     else
       Printf.sprintf " rescues=%d rescue_aborts=%d replans=%d" t.rescues
         t.rescue_aborts t.replans)
  ^
  if t.deadline_aborts = 0 then ""
  else Printf.sprintf " deadline_aborts=%d" t.deadline_aborts
