type t = {
  mutable addcc : int;
  mutable addcp : int;
  mutable subcc : int;
  mutable multcc : int;
  mutable multcp : int;
  mutable rotate : int;
  mutable rescale : int;
  mutable modswitch : int;
  mutable bootstrap : int;
  mutable total_latency_us : float;
  mutable bootstrap_latency_us : float;
  mutable injected_faults : int;
  mutable retries : int;
  mutable checkpoint_restores : int;
  mutable backoff_us : float;
}

let create () =
  {
    addcc = 0;
    addcp = 0;
    subcc = 0;
    multcc = 0;
    multcp = 0;
    rotate = 0;
    rescale = 0;
    modswitch = 0;
    bootstrap = 0;
    total_latency_us = 0.0;
    bootstrap_latency_us = 0.0;
    injected_faults = 0;
    retries = 0;
    checkpoint_restores = 0;
    backoff_us = 0.0;
  }

let record t (op : Halo_cost.Cost_model.op) ~level =
  (match op with
   | Halo_cost.Cost_model.Addcc -> t.addcc <- t.addcc + 1
   | Addcp -> t.addcp <- t.addcp + 1
   | Subcc -> t.subcc <- t.subcc + 1
   | Multcc -> t.multcc <- t.multcc + 1
   | Multcp -> t.multcp <- t.multcp + 1
   | Rotate -> t.rotate <- t.rotate + 1
   | Rescale -> t.rescale <- t.rescale + 1
   | Modswitch -> t.modswitch <- t.modswitch + 1
   | Encode -> ());
  t.total_latency_us <-
    t.total_latency_us +. Halo_cost.Cost_model.latency_us op ~level

let record_bootstrap t ~target =
  t.bootstrap <- t.bootstrap + 1;
  let l = Halo_cost.Cost_model.bootstrap_latency_us ~target in
  t.total_latency_us <- t.total_latency_us +. l;
  t.bootstrap_latency_us <- t.bootstrap_latency_us +. l

let record_fault t = t.injected_faults <- t.injected_faults + 1

let record_retry t ~backoff_us =
  t.retries <- t.retries + 1;
  t.backoff_us <- t.backoff_us +. backoff_us

let record_restore t = t.checkpoint_restores <- t.checkpoint_restores + 1

let total_ops t =
  t.addcc + t.addcp + t.subcc + t.multcc + t.multcp + t.rotate + t.rescale
  + t.modswitch + t.bootstrap

let compute_latency_us t = t.total_latency_us -. t.bootstrap_latency_us

let to_string t =
  Printf.sprintf
    "addcc=%d addcp=%d subcc=%d multcc=%d multcp=%d rotate=%d rescale=%d \
     modswitch=%d bootstrap=%d latency=%.0fus (bootstrap %.0fus, %.1f%%)"
    t.addcc t.addcp t.subcc t.multcc t.multcp t.rotate t.rescale t.modswitch
    t.bootstrap t.total_latency_us t.bootstrap_latency_us
    (if t.total_latency_us > 0.0 then
       100.0 *. t.bootstrap_latency_us /. t.total_latency_us
     else 0.0)
  ^
  if t.injected_faults = 0 && t.retries = 0 && t.checkpoint_restores = 0 then ""
  else
    Printf.sprintf " faults=%d retries=%d restores=%d backoff=%.0fus"
      t.injected_faults t.retries t.checkpoint_restores t.backoff_us
