(** Execution statistics: dynamic operation counts and modeled latency.

    Latency is charged per executed operation from the cost model calibrated
    to the paper's Tables 2–3 (see [lib/costmodel]); [bootstrap_latency_us]
    is kept separately because Figure 4 reports the bootstrap share of the
    end-to-end time.

    The resilience counters ([injected_faults], [retries],
    [checkpoint_restores], [backoff_us]) are filled in by the
    fault-injection and retry layers ({!Faults}, {!Resilient}); they stay
    zero on a plain interpreter run. *)

type t = {
  mutable addcc : int;
  mutable addcp : int;
  mutable subcc : int;
  mutable multcc : int;
  mutable multcp : int;
  mutable rotate : int;
  mutable rescale : int;
  mutable modswitch : int;
  mutable bootstrap : int;
  mutable total_latency_us : float;
  mutable bootstrap_latency_us : float;
  mutable injected_faults : int;  (** faults injected by {!Faults} *)
  mutable retries : int;  (** transient-fault retries by {!Resilient} *)
  mutable checkpoint_restores : int;
      (** loop iterations re-executed from their checkpoint *)
  mutable backoff_us : float;  (** total simulated backoff delay *)
  mutable checkpoint_writes : int;
      (** durable checkpoint entries written by the journal sink *)
  mutable checkpoint_bytes : int;  (** bytes of journal entries written *)
  mutable guard_trips : int;
      (** periodic in-loop noise-guard violations observed *)
  mutable key_switches : int;
      (** key-switch applies executed: relinearizations and nonzero
          rotations, hoisted or not *)
  mutable hoisted_groups : int;
      (** grouped rotations executed with a shared digit decomposition *)
  mutable decompositions_saved : int;
      (** digit decompositions avoided by hoisting (group size - 1 each) *)
  mutable deadline_aborts : int;
      (** executions aborted by a blown virtual-clock deadline *)
  mutable key_cache_hits : int;
      (** rotation-key lookups served from the resident key cache *)
  mutable key_cache_misses : int;
      (** rotation keys generated on first use *)
  mutable key_cache_evictions : int;
      (** rotation keys evicted cold under the byte budget *)
  mutable key_cache_regens : int;
      (** evicted rotation keys regenerated deterministically on re-use *)
  mutable digit_reuses : int;
      (** digit decompositions reused across consecutive ops on the same
          ciphertext (each also counts toward [decompositions_saved]) *)
  mutable lazy_rotsums : int;
      (** fused rotate-and-sum groups executed with a single mod-down *)
  mutable rescues : int;
      (** unplanned rescue bootstraps fired by the runtime noise monitor *)
  mutable rescue_aborts : int;
      (** rescue opportunities declined (budget exhausted, estimate already
          at the bootstrap floor, or a planned bootstrap superseded it) *)
  mutable replans : int;
      (** re-executions under a recompiled safer strategy after rescue
          could not keep the run inside its noise budget *)
}

val create : unit -> t

val record : t -> Halo_cost.Cost_model.op -> level:int -> unit
(** Count one primitive op at the given operand level. *)

val record_bootstrap : t -> target:int -> unit

val record_fault : t -> unit
val record_retry : t -> backoff_us:float -> unit
val record_restore : t -> unit
val record_checkpoint_write : t -> bytes:int -> unit
val record_guard_trip : t -> unit

val record_key_switch : t -> unit
(** Count one key-switch apply (a relinearization or a nonzero rotation). *)

val record_hoisted_group : t -> size:int -> unit
(** Count one executed hoisted-rotation group of [size] nonzero offsets:
    bumps [hoisted_groups] and charges [size - 1] to
    [decompositions_saved]. *)

val record_deadline_abort : t -> unit
(** Count one execution aborted by a blown {!Clock} deadline. *)

val record_key_cache :
  t ->
  hits:int ->
  misses:int ->
  evictions:int ->
  regens:int ->
  digit_hits:int ->
  unit
(** Fold key-cache and digit-reuse counters (read from the key set with
    [Halo_ckks.Keys.cache_stats]) into the record.  Call once at final
    reporting, never mid-run: kill/resume stats comparisons must not
    depend on cache warmth at the kill point.  [digit_hits] also counts
    toward [decompositions_saved] (each reuse skips one decomposition). *)

val record_lazy_rotsum : t -> unit
(** Count one fused rotate-and-sum group (single shared mod-down). *)

val record_rescue : t -> target:int -> unit
(** Count one rescue bootstrap at [target]: bumps [rescues] {e and}
    [bootstrap] (a rescue is an unplanned bootstrap) and charges
    {!Halo_cost.Cost_model.rescue_latency_us} to both latency totals. *)

val record_rescue_abort : t -> unit
(** Count one declined rescue opportunity. *)

val record_replan : t -> unit
(** Count one re-execution under a recompiled safer strategy. *)

val assign : into:t -> t -> unit
(** Overwrite every counter of [into] with [src]'s values.  Crash recovery
    uses this to reinstall the statistics snapshot stored with a checkpoint,
    so a resumed run reports the same counters as an uninterrupted one. *)

val merge : into:t -> t -> unit
(** Accumulate every counter of [src] into [into].  The serving layer runs
    each batch against its own statistics record (batches execute in
    parallel on the domain pool) and folds the per-batch records in batch
    order, so the aggregate is deterministic for any pool size. *)

val total_ops : t -> int
val compute_latency_us : t -> float
(** Non-bootstrap latency. *)

val to_string : t -> string
