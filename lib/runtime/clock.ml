(* Deterministic virtual clock.  Time is integer microseconds charged from
   the cost model (each advance rounds its float latency once), so sums are
   associative: folding the same charges in any order yields the same
   reading, which is what lets a resumed server rebuild its clock from the
   journal bit-identically. *)

type t = { mutable now : int; mutable deadline : int }

let unarmed = max_int

let create ?deadline_us () =
  let deadline =
    match deadline_us with
    | None -> unarmed
    | Some d ->
      if d < 1 then invalid_arg "Clock.create: deadline below 1us";
      d
  in
  { now = 0; deadline }

let now_us t = t.now

let deadline_us t = if t.deadline = unarmed then None else Some t.deadline

let advance t ~us =
  if us > 0.0 then t.now <- t.now + int_of_float (Float.round us)

let tick t ~us = if us > 0 then t.now <- t.now + us

let expired t = t.deadline <> unarmed && t.now > t.deadline

let remaining_us t = if t.deadline = unarmed then unarmed else t.deadline - t.now

let arm t ~deadline_us =
  if deadline_us < 1 then invalid_arg "Clock.arm: deadline below 1us";
  t.deadline <- deadline_us

let disarm t = t.deadline <- unarmed
