(** Runtime noise supervision: watches the per-ciphertext noise estimates
    the backends thread through every op (see {!Backend.S.noise_estimate})
    and fires {e rescue bootstraps} when the estimated headroom against the
    decrypt-time guard threshold drops too low — before the work is wasted,
    instead of discovering the breach at decrypt.

    The monitor checks at two kinds of sites:

    - {e [For]-loop heads} ({!Make.check_ct}, wired in by {!Resilient}):
      each loop-carried ciphertext whose headroom
      [threshold / estimate] has fallen below [rescue_margin] is
      bootstrapped back to its current level, counted in [Stats.rescues]
      and (when the budget is exhausted or the estimate already sits at
      the bootstrap floor) declined into [Stats.rescue_aborts];
    - {e planned bootstrap sites} ({!Make.at_bootstrap}, wired in by the
      interpreter): pressure observed immediately before a planned
      bootstrap is counted as a declined rescue, since the program is
      about to reset the noise anyway.

    Every decision is a pure function of the ciphertext estimate and the
    checkpointed statistics, so kill/resume replays the identical rescue
    sequence bit for bit.  On a quiet run (no spikes, no drift) the
    estimate never exceeds the static bound, headroom never falls below
    the guard margin, and the monitor is byte-invisible. *)

type config = {
  threshold : float;
      (** the largest estimate tolerable at decrypt — normally
          {!Halo.Noise_budget.threshold} of the compiled program *)
  rescue_margin : float;
      (** fire when [threshold / estimate] drops below this *)
  max_rescues : int;  (** rescue budget for the whole run *)
}

val default_rescue_margin : float
(** [2.0]: rescue at half the tolerable estimate — late enough that a
    quiet run (whose headroom never drops below the guard margin, [10.0]
    by default) never pays for a bootstrap it does not need. *)

val default_max_rescues : int
(** [4] *)

val config :
  ?rescue_margin:float -> ?max_rescues:int -> threshold:float -> unit ->
  config
(** Raises [Invalid_argument] on a non-positive threshold, a margin below
    [1.0] or a negative budget. *)

type rescue_event = {
  r_seq : int;  (** 0-based rescue sequence number within the run *)
  r_target : int;  (** bootstrap target level (the ciphertext's level) *)
  r_before : float;  (** estimate before the rescue *)
  r_after : float;  (** estimate after (the bootstrap unit) *)
}

module Make (B : Backend.S) : sig
  type t

  val create :
    ?on_rescue:(rescue_event -> unit) -> cfg:config -> stats:Stats.t ->
    unit -> t
  (** [on_rescue] is invoked after each fired rescue (statistics already
      updated) — the hook the persistence layer uses to journal
      [rescue-<seq>.ckpt] frames. *)

  val headroom : t -> float -> float
  (** [threshold / estimate] ([infinity] for non-positive estimates). *)

  val check_ct : t -> B.state -> B.ct -> B.ct
  (** Loop-head check: returns the (possibly rescued) ciphertext. *)

  val at_bootstrap : t -> B.state -> B.ct -> target:int -> unit
  (** Planned-bootstrap-site check: counts pressure as a declined rescue. *)
end
