(** Adapter exposing the real RNS-CKKS evaluator ({!Halo_ckks.Eval}) through
    the {!Backend.S} interface.  The state is the key material; bootstrap is
    the decrypt–re-encrypt oracle (see the substitution table in DESIGN.md).

    Ciphertext polynomials flowing through this backend are NTT-resident:
    multiplies and rotations stay in the evaluation domain and only rescale
    and decrypt pay an inverse transform (DESIGN.md section 10).  Per-limb
    kernel loops parallelize across [HALO_DOMAINS] OCaml domains; results
    are bit-identical for any pool size, so interpreter replay and the
    resilience checkpoint tests are unaffected by the setting.

    [Eval] reports discipline violations with [Invalid_argument]; the
    adapter converts them into {!Halo_error.Backend_error} so failures on
    either backend carry the same op/level context. *)

open Halo_ckks

type ct = Eval.ct
type state = Keys.t

let name = "lattice"

let typed op ?level f =
  try f ()
  with Invalid_argument reason ->
    raise
      (Halo_error.Backend_error
         { site = Halo_error.site ?level ~backend:name op; reason })

let slots (keys : Keys.t) = keys.params.slots
let max_level (keys : Keys.t) = keys.params.max_level
let level _keys ct = Eval.level ct

let encrypt keys ~level values =
  typed "encrypt" ~level (fun () -> Eval.encrypt keys ~level values)

let decrypt keys ct =
  typed "decrypt" ~level:(Eval.level ct) (fun () -> Eval.decrypt keys ct)

let addcc st a b =
  typed "addcc" ~level:(Eval.level a) (fun () -> Eval.addcc st a b)

let subcc st a b =
  typed "subcc" ~level:(Eval.level a) (fun () -> Eval.subcc st a b)

let addcp st a v =
  typed "addcp" ~level:(Eval.level a) (fun () -> Eval.addcp st a v)

let multcc st a b =
  typed "multcc" ~level:(Eval.level a) (fun () -> Eval.multcc st a b)

let multcp st a v =
  typed "multcp" ~level:(Eval.level a) (fun () -> Eval.multcp st a v)

let rotate keys ct ~offset =
  typed "rotate" ~level:(Eval.level ct) (fun () -> Eval.rotate keys ct ~offset)

let rotate_many keys ct ~offsets =
  typed "rotate_many" ~level:(Eval.level ct) (fun () ->
      Eval.rotate_many keys ct ~offsets)

let rot_sum keys ct ~terms =
  typed "rot_sum" ~level:(Eval.level ct) (fun () -> Eval.rot_sum keys ct ~terms)

let rescale st a =
  typed "rescale" ~level:(Eval.level a) (fun () -> Eval.rescale st a)

let modswitch keys ct ~down =
  typed "modswitch" ~level:(Eval.level ct) (fun () ->
      Eval.modswitch keys ct ~down)

let bootstrap keys ct ~target =
  typed "bootstrap" ~level:(Eval.level ct) (fun () ->
      Bootstrap_oracle.bootstrap keys ct ~target)

let negate st a =
  typed "negate" ~level:(Eval.level a) (fun () -> Eval.negate st a)

let noise_estimate _keys ct = Eval.noise_est ct
let inflate_noise _keys ct ~by = Eval.inflate_noise ct ~by

let fold_cache_stats keys stats =
  let s = Keys.cache_stats keys in
  Stats.record_key_cache stats ~hits:s.Keys.snap_hits ~misses:s.Keys.snap_misses
    ~evictions:s.Keys.snap_evictions ~regens:s.Keys.snap_regenerations
    ~digit_hits:s.Keys.snap_digit_hits
