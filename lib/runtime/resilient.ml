type policy = {
  max_attempts : int;
  max_restores : int;
  base_backoff_us : float;
  backoff_factor : float;
  max_backoff_us : float;
}

let default_policy =
  {
    max_attempts = 5;
    max_restores = 2;
    base_backoff_us = 100.0;
    backoff_factor = 2.0;
    max_backoff_us = 10_000.0;
  }

let no_retry = { default_policy with max_attempts = 1; max_restores = 0 }

module Make (B : Backend.S) = struct
  module I = Interp.Make (B)
  module M = Noise_monitor.Make (B)

  type degraded = {
    failed : Halo_error.site;
    attempts : int;
    iteration : int option;
    reason : string;
    stats : Stats.t;
  }

  type outcome =
    | Complete of { outputs : float array list; stats : Stats.t }
    | Degraded of degraded

  type checkpoint = {
    sink : loop_var:int option -> index:int -> I.value list -> unit;
    entry : loop_var:int option -> count:int -> (int * I.value list) option;
  }

  type guard = {
    guard_every : int;
    guard_check : index:int -> I.value list -> bool;
  }

  let degraded_to_string d =
    Printf.sprintf
      "degraded: gave up at %s after %d attempt%s%s; partial stats: %s"
      (Halo_error.site_to_string d.failed)
      d.attempts
      (if d.attempts = 1 then "" else "s")
      (match d.iteration with
       | Some i -> Printf.sprintf " in loop iteration %d" i
       | None -> "")
      (Stats.to_string d.stats)

  let backoff_us policy attempt =
    (* attempt 1 failed -> first delay is the base; purely computed, no
       wall-clock dependence. *)
    Float.min policy.max_backoff_us
      (policy.base_backoff_us
      *. (policy.backoff_factor ** float_of_int (attempt - 1)))

  let run ?(policy = default_policy) ?checkpoint ?guard ?clock ?monitor ?stats
      st ?(bindings = []) ~inputs p =
    let stats = match stats with Some s -> s | None -> Stats.create () in
    let current_iteration = ref None in
    (* Virtual-clock maintenance at the instruction boundary.  The clock is
       charged with exactly the modeled latency the instruction (or its
       simulated retry backoff) added to [stats], so clock readings are a
       pure function of the executed op stream — no wall time anywhere.
       The deadline is checked only between instructions: a batch that
       blows its budget mid-instruction finishes that instruction and
       aborts at the next boundary. *)
    let view () = stats.Stats.total_latency_us +. stats.Stats.backoff_us in
    let charge since =
      match clock with
      | None -> ()
      | Some c -> Clock.advance c ~us:(view () -. since)
    in
    let deadline_check site =
      match clock with
      | Some c when Clock.expired c ->
        Stats.record_deadline_abort stats;
        raise
          (Halo_error.Deadline_exceeded
             {
               site;
               now_us = Clock.now_us c;
               deadline_us = Option.value ~default:0 (Clock.deadline_us c);
             })
      | _ -> ()
    in
    let instr site thunk =
      let rec attempt n =
        let before = view () in
        match thunk () with
        | () ->
          charge before;
          deadline_check site
        | exception e when Halo_error.is_transient e ->
          charge before;
          if n >= policy.max_attempts then
            raise
              (Halo_error.Retry_exhausted
                 { site; attempts = n; iteration = !current_iteration })
          else begin
            let b = backoff_us policy n in
            Stats.record_retry stats ~backoff_us:b;
            (match clock with
             | None -> ()
             | Some c -> Clock.advance c ~us:b);
            deadline_check site;
            attempt (n + 1)
          end
      in
      attempt 1
    in
    let iteration ~loop ~index thunk =
      let enclosing = !current_iteration in
      current_iteration := Some index;
      let finish v =
        current_iteration := enclosing;
        (* Durable checkpointing, the periodic guard and the noise monitor
           apply to top-level loops only: nested iterations are re-executed
           wholesale when their enclosing top-level iteration is restored,
           so journaling them would be redundant (and would break the
           monotone per-loop-var iteration order the journal relies on). *)
        if enclosing = None then begin
          (* Rescue check runs BEFORE the guard and the checkpoint sink, so
             a checkpoint written at this iteration carries the rescued
             values, RNG position and rescue counters — a resume from it
             replays the remaining run (and any further rescue decisions)
             bit for bit. *)
          let v =
            match monitor with
            | None -> v
            | Some m ->
              let before = view () in
              let v =
                List.map
                  (function
                    | I.Cipher ct -> I.Cipher (M.check_ct m st ct)
                    | plain -> plain)
                  v
              in
              charge before;
              v
          in
          (match guard with
           | Some g when g.guard_every > 0 && (index + 1) mod g.guard_every = 0
             ->
             if not (g.guard_check ~index v) then Stats.record_guard_trip stats
           | _ -> ());
          (match checkpoint with
           | Some c -> c.sink ~loop_var:loop.Halo_error.var ~index v
           | None -> ());
          v
        end
        else v
      in
      (* [thunk] captures the loop-carried values at the iteration head (the
         checkpoint); re-invoking it re-executes the iteration from there. *)
      let rec go restores =
        match thunk () with
        | v -> finish v
        | exception (Halo_error.Retry_exhausted _ as e) ->
          if restores >= policy.max_restores then begin
            current_iteration := enclosing;
            raise e
          end
          else begin
            Stats.record_restore stats;
            go (restores + 1)
          end
        | exception e ->
          current_iteration := enclosing;
          raise e
      in
      go 0
    in
    let loop_enter ~loop ~count args =
      if !current_iteration <> None then (0, args)
      else
        match checkpoint with
        | None -> (0, args)
        | Some c -> (
          match c.entry ~loop_var:loop.Halo_error.var ~count with
          | None -> (0, args)
          | Some (start, vals) -> (start, vals))
    in
    let at_bootstrap ~site:_ ~target ct =
      match monitor with
      | None -> ()
      | Some m -> M.at_bootstrap m st ct ~target
    in
    match
      I.run
        ~protect:{ I.instr; iteration; loop_enter; at_bootstrap }
        ~stats st ~bindings ~inputs p
    with
    | outputs, stats -> Complete { outputs; stats }
    | exception (Halo_error.Retry_exhausted { site; attempts; iteration } as e)
      ->
      Degraded
        {
          failed = site;
          attempts;
          iteration;
          reason = Halo_error.to_string e;
          stats;
        }
end
