open Halo
module Cost = Halo_cost.Cost_model

let op_name : Ir.op -> string = function
  | Ir.Const _ -> "const"
  | Ir.Binary { kind = Ir.Add; _ } -> "add"
  | Ir.Binary { kind = Ir.Sub; _ } -> "sub"
  | Ir.Binary { kind = Ir.Mul; _ } -> "mul"
  | Ir.Rotate _ -> "rotate"
  | Ir.RotateMany _ -> "rotate_many"
  | Ir.RotSum _ -> "rot_sum"
  | Ir.Rescale _ -> "rescale"
  | Ir.Modswitch _ -> "modswitch"
  | Ir.Bootstrap _ -> "bootstrap"
  | Ir.Pack _ -> "pack"
  | Ir.Unpack _ -> "unpack"
  | Ir.For _ -> "for"

module Make (B : Backend.S) = struct
  type value = Plain of float array | Cipher of B.ct

  type protect = {
    instr : Halo_error.site -> (unit -> unit) -> unit;
    iteration :
      loop:Halo_error.site -> index:int -> (unit -> value list) -> value list;
    loop_enter :
      loop:Halo_error.site -> count:int -> value list -> int * value list;
    at_bootstrap : site:Halo_error.site -> target:int -> B.ct -> unit;
  }

  let unprotected =
    {
      instr = (fun _ f -> f ());
      iteration = (fun ~loop:_ ~index:_ f -> f ());
      loop_enter = (fun ~loop:_ ~count:_ args -> (0, args));
      at_bootstrap = (fun ~site:_ ~target:_ _ -> ());
    }

  let err ?site fmt =
    Printf.ksprintf
      (fun reason -> raise (Halo_error.Interp_error { site; reason }))
      fmt

  let replicate ~slots values =
    let len = Array.length values in
    if len = 0 then err "empty input vector";
    if len >= slots then Array.sub values 0 slots
    else begin
      let period = Sizes.round_pow2 len in
      if slots mod period <> 0 then
        err "input period %d does not divide slot count %d" period slots;
      Array.init slots (fun i ->
          let j = i mod period in
          if j < len then values.(j) else 0.0)
    end

  let rotate_plain values offset =
    let n = Array.length values in
    let shift = ((offset mod n) + n) mod n in
    Array.init n (fun i -> values.((i + shift) mod n))

  let site_of (i : Ir.instr) =
    Halo_error.site
      ?var:(match i.results with v :: _ -> Some v | [] -> None)
      ~backend:B.name (op_name i.op)

  let run ?(protect = unprotected) ?stats st ?(bindings = []) ~inputs
      (p : Ir.program) =
    let slots = B.slots st in
    if slots <> p.slots then
      err "backend %s has %d slots but program expects %d" B.name slots p.slots;
    let stats = match stats with Some s -> s | None -> Stats.create () in
    let env : (Ir.var, value) Hashtbl.t = Hashtbl.create 256 in
    let value_of ?site v =
      match Hashtbl.find_opt env v with
      | Some x -> x
      | None -> err ?site "use of undefined variable %%%d" v
    in
    let level_of ct = B.level st ct in
    let record op ct = Stats.record stats op ~level:(level_of ct) in
    (* Inputs: replicate across the slots, encrypt the cipher ones. *)
    List.iter
      (fun (inp : Ir.input) ->
        let raw =
          match List.assoc_opt inp.in_name inputs with
          | Some r -> r
          | None -> err "missing input %S" inp.in_name
        in
        let data = replicate ~slots raw in
        let v =
          match inp.in_status with
          | Ir.Plain -> Plain data
          | Ir.Cipher -> Cipher (B.encrypt st ~level:p.max_level data)
        in
        Hashtbl.replace env inp.in_var v)
      p.inputs;
    let rec exec_block (b : Ir.block) args =
      List.iter2 (fun prm v -> Hashtbl.replace env prm v) b.params args;
      List.iter (fun (i : Ir.instr) -> exec_instr i) b.instrs
    and exec_instr (i : Ir.instr) =
      let site = site_of i in
      let ierr fmt = err ~site fmt in
      let value_of v = value_of ~site v in
      let const_data value size =
        match value with
        | Ir.Splat x -> Array.make slots x
        | Ir.Vector xs ->
          if Array.length xs <> size then
            ierr "vector constant has %d elements but declares size %d"
              (Array.length xs) size;
          replicate ~slots xs
      in
      let binary kind lhs rhs =
        match (kind, lhs, rhs) with
        | Ir.Add, Plain a, Plain b -> Plain (Array.map2 ( +. ) a b)
        | Ir.Sub, Plain a, Plain b -> Plain (Array.map2 ( -. ) a b)
        | Ir.Mul, Plain a, Plain b -> Plain (Array.map2 ( *. ) a b)
        | Ir.Add, Cipher a, Cipher b ->
          record Cost.Addcc a;
          Cipher (B.addcc st a b)
        | Ir.Sub, Cipher a, Cipher b ->
          record Cost.Subcc a;
          Cipher (B.subcc st a b)
        | Ir.Mul, Cipher a, Cipher b ->
          record Cost.Multcc a;
          Stats.record_key_switch stats;
          Cipher (B.multcc st a b)
        | Ir.Add, Cipher a, Plain b | Ir.Add, Plain b, Cipher a ->
          record Cost.Addcp a;
          Cipher (B.addcp st a b)
        | Ir.Sub, Cipher a, Plain b ->
          record Cost.Addcp a;
          Cipher (B.addcp st a (Array.map Float.neg b))
        | Ir.Sub, Plain a, Cipher b ->
          record Cost.Addcp b;
          Cipher (B.addcp st (B.negate st b) a)
        | Ir.Mul, Cipher a, Plain b | Ir.Mul, Plain b, Cipher a ->
          record Cost.Multcp a;
          Cipher (B.multcp st a b)
      in
      match i.op with
      | Ir.For fo ->
        (* The loop itself is not an [instr] protection site: faults inside
           the body surface at the innermost enclosing iteration, whose
           checkpoint (the loop-carried values at the iteration head) lets
           the resilient runtime re-execute just that iteration. *)
        let n =
          try Ir.eval_count ~bindings fo.count
          with Not_found ->
            ierr "missing binding for iteration count %s"
              (Ir.count_to_string fo.count)
        in
        let rec iterate k args =
          if k = 0 then args
          else begin
            (* [args] are the checkpointed loop-carried values: the thunk
               re-executes the whole iteration from them, and every body
               variable is recomputed before use (SSA order), so re-entry
               is safe after a mid-iteration fault. *)
            let next =
              protect.iteration ~loop:site ~index:(n - k) (fun () ->
                  exec_block fo.body args;
                  List.map value_of fo.body.yields)
            in
            iterate (k - 1) next
          end
        in
        (* [loop_enter] lets a recovery driver fast-forward the loop: it
           returns the number of iterations already completed (restored from
           a durable checkpoint) and the carried values to resume from. *)
        let start, entry_args =
          protect.loop_enter ~loop:site ~count:n (List.map value_of fo.inits)
        in
        if start < 0 || start > n then
          ierr "loop_enter fast-forward %d outside [0, %d]" start n;
        let final = iterate (n - start) entry_args in
        List.iter2 (fun r v -> Hashtbl.replace env r v) i.results final
      | op ->
        protect.instr site (fun () ->
            match op with
            | Ir.Const { value; size } ->
              Hashtbl.replace env (Ir.result i) (Plain (const_data value size))
            | Ir.Binary { kind; lhs; rhs } ->
              Hashtbl.replace env (Ir.result i)
                (binary kind (value_of lhs) (value_of rhs))
            | Ir.Rotate { src; offset } ->
              let v =
                match value_of src with
                | Plain a -> Plain (rotate_plain a offset)
                | Cipher c ->
                  if offset = 0 then Cipher c
                  else begin
                    record Cost.Rotate c;
                    Stats.record_key_switch stats;
                    Cipher (B.rotate st c ~offset)
                  end
              in
              Hashtbl.replace env (Ir.result i) v
            | Ir.RotateMany { src; offsets } ->
              (match value_of src with
               | Plain a ->
                 List.iter2
                   (fun r offset ->
                     Hashtbl.replace env r (Plain (rotate_plain a offset)))
                   i.results offsets
               | Cipher c ->
                 (* Zero offsets short-circuit exactly as single rotates do;
                    only the nonzero members reach the backend, as one
                    hoisted group sharing a digit decomposition. *)
                 let nonzero = List.filter (fun o -> o <> 0) offsets in
                 List.iter
                   (fun _ ->
                     record Cost.Rotate c;
                     Stats.record_key_switch stats)
                   nonzero;
                 let m = List.length nonzero in
                 if m >= 2 then Stats.record_hoisted_group stats ~size:m;
                 let rotated =
                   if m = 0 then [] else B.rotate_many st c ~offsets:nonzero
                 in
                 let rec bind results offsets rotated =
                   match (results, offsets, rotated) with
                   | [], [], [] -> ()
                   | r :: rs, 0 :: os, cts ->
                     Hashtbl.replace env r (Cipher c);
                     bind rs os cts
                   | r :: rs, _ :: os, ct :: cts ->
                     Hashtbl.replace env r (Cipher ct);
                     bind rs os cts
                   | _ -> ierr "rotate_many result/offset arity mismatch"
                 in
                 bind i.results offsets rotated)
            | Ir.RotSum { src; terms } ->
              (match value_of src with
               | Plain a ->
                 (* Cleartext semantics: rescale is value-preserving, so a
                    weighted group is just Σ coeff ⊙ rot(src). *)
                 let term_value (o, c) =
                   let r = rotate_plain a o in
                   match c with
                   | None -> r
                   | Some v ->
                     (match value_of v with
                      | Plain m -> Array.map2 ( *. ) r m
                      | Cipher _ -> ierr "rot_sum: cipher coefficient")
                 in
                 let sum =
                   match terms with
                   | [] -> ierr "rot_sum: empty term list"
                   | t :: ts ->
                     List.fold_left
                       (fun acc t -> Array.map2 ( +. ) acc (term_value t))
                       (term_value t) ts
                 in
                 Hashtbl.replace env (Ir.result i) (Plain sum)
               | Cipher c ->
                 let resolved =
                   List.map
                     (fun (o, cv) ->
                       match cv with
                       | None -> (o, None)
                       | Some v ->
                         (match value_of v with
                          | Plain m -> (o, Some m)
                          | Cipher _ -> ierr "rot_sum: cipher coefficient"))
                     terms
                 in
                 (* Accounting mirrors the unfused sequence so fused and
                    unfused runs report the same op counts: a rotate and key
                    switch per nonzero offset, a multcp+rescale per weighted
                    member, an add per extra member, and one hoisted group
                    when the decomposition is shared. *)
                 let nonzero = List.filter (fun (o, _) -> o <> 0) resolved in
                 List.iter
                   (fun _ ->
                     record Cost.Rotate c;
                     Stats.record_key_switch stats)
                   nonzero;
                 List.iter
                   (fun (_, cv) ->
                     match cv with
                     | None -> ()
                     | Some _ ->
                       record Cost.Multcp c;
                       record Cost.Rescale c)
                   resolved;
                 let m = List.length nonzero in
                 if m >= 2 then Stats.record_hoisted_group stats ~size:m;
                 Stats.record_lazy_rotsum stats;
                 let out = B.rot_sum st c ~terms:resolved in
                 List.iteri
                   (fun idx _ -> if idx > 0 then record Cost.Addcc out)
                   resolved;
                 Hashtbl.replace env (Ir.result i) (Cipher out))
            | Ir.Rescale { src } ->
              (match value_of src with
               | Plain _ -> ierr "rescale of plaintext"
               | Cipher c ->
                 record Cost.Rescale c;
                 Hashtbl.replace env (Ir.result i) (Cipher (B.rescale st c)))
            | Ir.Modswitch { src; down } ->
              (match value_of src with
               | Plain _ -> ierr "modswitch of plaintext"
               | Cipher c ->
                 record Cost.Modswitch c;
                 Hashtbl.replace env (Ir.result i)
                   (Cipher (B.modswitch st c ~down)))
            | Ir.Bootstrap { src; target } ->
              (match value_of src with
               | Plain _ -> ierr "bootstrap of plaintext"
               | Cipher c ->
                 protect.at_bootstrap ~site ~target c;
                 Stats.record_bootstrap stats ~target;
                 Hashtbl.replace env (Ir.result i)
                   (Cipher (B.bootstrap st c ~target)))
            | Ir.Pack _ | Ir.Unpack _ ->
              ierr "composite pack/unpack reached the interpreter; compile \
                    with lowering"
            | Ir.For _ -> assert false)
    in
    let input_values =
      List.map (fun (inp : Ir.input) -> value_of inp.in_var) p.inputs
    in
    exec_block p.body input_values;
    let outputs =
      List.map
        (fun v ->
          match value_of v with
          | Plain a -> a
          | Cipher c -> B.decrypt st c)
        p.body.yields
    in
    (outputs, stats)
end
