(** Deterministic, seed-driven fault injection over any {!Backend.S}.

    [Make (B)] is itself a {!Backend.S} whose state wraps a [B.state] with a
    fault configuration; the interpreter (and the resilient runtime) run
    against it unchanged.  Three fault kinds are modeled:

    - {b transient op failures} — {!Halo_error.Transient} raised {e before}
      the underlying op executes (ciphertexts are immutable values, so a
      faulted op leaves no partial state);
    - {b bootstrap failures} — {!Halo_error.Bootstrap_failure}, drawn with
      an extra per-bootstrap probability on top of the transient rate;
    - {b noise-spike corruption} — a silent perturbation of the op's result
      (applied generically via the underlying backend's [addcp]), which no
      retry can see: only the {!Guard} catches it at decrypt.

    Every wrapped compute op draws from a dedicated RNG seeded by
    {!config}'s [seed], so the same seed yields the same fault schedule on
    the same execution — and a retried op re-draws, modeling a glitch that
    clears.

    {b Fixed-schedule semantics}: [at] is an {e occurrence index} — the
    number of compute ops {e completed} before the op — not an attempt
    count.  A faulted op does not advance the index, so its retries keep
    the same index and a retry never shifts later schedule entries onto
    different ops.  Each schedule entry fires {e exactly once}; duplicate
    entries at the same index fault successive attempts of that op (e.g.
    two [{at = 5; kind = Transient_op}] entries fault op 5's first attempt
    and its first retry). *)

type kind = Transient_op | Bootstrap_abort | Noise_spike

type event = { at : int; kind : kind }
(** Force a fault of [kind] when the global op index reaches [at]. *)

type config = {
  seed : int;
  transient_prob : float;  (** per compute op *)
  bootstrap_prob : float;  (** additional, per bootstrap *)
  spike_prob : float;  (** per ct-producing compute op *)
  spike_magnitude : float;  (** slot-value magnitude of a spike *)
  schedule : event list;
  fault_io : bool;  (** also inject transients on encrypt/decrypt *)
}

val config :
  ?transient_prob:float ->
  ?bootstrap_prob:float ->
  ?spike_prob:float ->
  ?spike_magnitude:float ->
  ?schedule:event list ->
  ?fault_io:bool ->
  seed:int ->
  unit ->
  config
(** Probabilities default to [0.]; [spike_magnitude] to [1e-4]; [schedule]
    to []; [fault_io] to [false] (input encryption and output decryption
    run outside the retry protection, so they stay reliable by default). *)

module Make (B : Backend.S) : sig
  include Backend.S with type ct = B.ct

  val wrap : ?on_fault:(kind -> unit) -> config -> B.state -> state
  (** [on_fault] is invoked once per injected fault (e.g.
      [fun _ -> Stats.record_fault stats]). *)

  val inner : state -> B.state
  val ops_seen : state -> int
  (** Occurrence index: compute ops {e completed} so far (faulted attempts
      do not count). *)

  val injected : state -> int
  val injected_transient : state -> int
  val injected_bootstrap : state -> int
  val injected_spikes : state -> int
end
