type op =
  | Addcc
  | Addcp
  | Subcc
  | Multcc
  | Multcp
  | Rotate
  | Rescale
  | Modswitch
  | Encode

let op_to_string = function
  | Addcc -> "addcc"
  | Addcp -> "addcp"
  | Subcc -> "subcc"
  | Multcc -> "multcc"
  | Multcp -> "multcp"
  | Rotate -> "rotate"
  | Rescale -> "rescale"
  | Modswitch -> "modswitch"
  | Encode -> "encode"

(* Anchor tables from the paper.  Table 2: (level, latency in us). *)
let multcc_anchors = [ (1, 758.); (5, 1146.); (10, 1974.); (15, 2528.) ]
let rescale_anchors = [ (1, 126.); (5, 288.); (10, 516.); (15, 731.) ]
let modswitch_anchors = [ (1, 15.); (5, 46.); (10, 77.); (15, 107.) ]

(* Table 3: (target level, latency in us). *)
let bootstrap_anchors =
  [ (4, 294928.); (7, 339302.); (10, 384637.); (13, 423781.); (16, 463171.) ]

let table2_levels = List.map fst multcc_anchors
let table3_targets = List.map fst bootstrap_anchors

(* Piecewise-linear interpolation through anchor points, extrapolating from
   the nearest segment outside the anchor range.  Anchors are sorted and have
   at least two points. *)
let interpolate anchors x =
  let rec segment = function
    | [ (x0, y0); (x1, y1) ] -> (x0, y0, x1, y1)
    | (x0, y0) :: ((x1, y1) :: _ as rest) ->
      if x <= x1 then (x0, y0, x1, y1) else segment rest
    | [ _ ] | [] -> invalid_arg "interpolate: need at least two anchors"
  in
  let x0, y0, x1, y1 = segment anchors in
  let t = float_of_int (x - x0) /. float_of_int (x1 - x0) in
  y0 +. (t *. (y1 -. y0))

(* Clamp to a small positive floor so extrapolation below level 1 can never
   produce a non-positive latency. *)
let positive x = Float.max x 1.0

(* ------------------------------------------------------------------ *)
(* Machine profiles                                                    *)
(* ------------------------------------------------------------------ *)

type profile = {
  profile_name : string;
  multcc_scale : float;
  rescale_scale : float;
  modswitch_scale : float;
  bootstrap_scale : float;
  switch_scale : float;
  decompose_fraction : float;
  mac_fraction : float;
  moddown_fraction : float;
  lazy_mac_overhead : float;
}

(* The paper profile is the identity: every scale is exactly 1.0 and the
   multiplications below are IEEE-exact, so the default model is
   bit-identical to the uncalibrated one (virtual clocks, checkpointed
   statistics and serving deadlines reproduce byte-for-byte). *)
let paper_gpu =
  {
    profile_name = "paper-gpu";
    multcc_scale = 1.0;
    rescale_scale = 1.0;
    modswitch_scale = 1.0;
    bootstrap_scale = 1.0;
    switch_scale = 1.0;
    decompose_fraction = 0.50;
    mac_fraction = 0.25;
    moddown_fraction = 0.15;
    lazy_mac_overhead = 0.0;
  }

(* Calibrated against the committed host measurements (this repo's software
   backend, no GPU):

   - BENCH_kernels.json, n = 4096 / limbs = 8: rns_mul_resident 329.7 us,
     rescale 244.7 us.  Against the paper model at level 8 (multcc 1642.8 us,
     rescale 424.8 us) that is multcc_scale ~ 0.20 and rescale_scale ~ 0.58
     — the host's CRT multiply is comparatively cheaper, its memory-bound
     rescale sweep comparatively dearer, which inverts some orderings the
     GPU numbers imply.  Modswitch is the same kind of sweep as rescale and
     shares its scale.
   - BENCH_rotations.json, n = 4096 / limbs = 8: one full sequential key
     switch costs 41.1 ms, of which (solving the group-2/4/8 hoisted rows)
     ~27.1 ms is the shared digit decomposition and ~13.9 ms the per-member
     MAC + mod-down.  Against the model's 0.9 x multcc aggregate that is
     switch_scale ~ 27.8 with the decompose share at 0.66 of the aggregate
     (fractions below keep the paper's sum-to-0.9 convention).
   - The matvec rows show lazy switching LOSING to the hoisted path at group
     size 2 (27.7 ms vs 35.4 ms) and winning at 4 and 8: each lazy member
     pays an extended-basis plaintext lift the hoisted path avoids, charged
     as [lazy_mac_overhead] extra MACs per member.  0.33 reproduces the
     measured crossover between group 2 and group 4.
   - Bootstrap is not benchmarked on this host; the paper scale is kept.  *)
let host =
  {
    profile_name = "host";
    multcc_scale = 0.20;
    rescale_scale = 0.58;
    modswitch_scale = 0.58;
    bootstrap_scale = 1.0;
    switch_scale = 27.8;
    decompose_fraction = 0.595;
    mac_fraction = 0.203;
    moddown_fraction = 0.102;
    lazy_mac_overhead = 0.33;
  }

let profiles = [ paper_gpu; host ]

let find_profile name =
  match String.lowercase_ascii name with
  | "paper-gpu" | "paper_gpu" | "paper" | "gpu" -> Some paper_gpu
  | "host" -> Some host
  | _ -> None

let current = ref paper_gpu

(* Honor HALO_COST_PROFILE on module load so the profile applies to every
   consumer (interpreter stats, virtual clocks, serving deadlines, tuner)
   without plumbing; unknown names fall back to the paper default loudly. *)
let () =
  match Sys.getenv_opt "HALO_COST_PROFILE" with
  | None | Some "" -> ()
  | Some name ->
    (match find_profile name with
     | Some p -> current := p
     | None ->
       Printf.eprintf
         "halo: unknown HALO_COST_PROFILE %S (known: %s); using %s\n%!" name
         (String.concat ", " (List.map (fun p -> p.profile_name) profiles))
         paper_gpu.profile_name)

let current_profile () = !current
let set_profile p = current := p

let with_profile p f =
  let saved = !current in
  current := p;
  Fun.protect ~finally:(fun () -> current := saved) f

let latency_us op ~level =
  let level = max 1 level in
  let p = !current in
  let base anchors = interpolate anchors level in
  positive
    (match op with
     | Multcc -> p.multcc_scale *. base multcc_anchors
     | Rescale -> p.rescale_scale *. base rescale_anchors
     | Modswitch -> p.modswitch_scale *. base modswitch_anchors
     | Addcc | Subcc -> 2.0 *. (p.modswitch_scale *. base modswitch_anchors)
     | Addcp -> 2.0 *. (p.modswitch_scale *. base modswitch_anchors)
     | Multcp -> 0.4 *. (p.multcc_scale *. base multcc_anchors)
     | Rotate -> 0.9 *. (p.switch_scale *. base multcc_anchors)
     | Encode -> p.modswitch_scale *. base modswitch_anchors)

let bootstrap_latency_us ~target =
  let target = max 1 target in
  positive (!current.bootstrap_scale *. interpolate bootstrap_anchors target)

(* A rescue bootstrap is an unplanned bootstrap plus the monitor's
   bookkeeping: snapshotting the estimate, journaling the rescue frame and
   re-entering the interpreter.  The overhead is modeled as one modswitch
   sweep at the rescue target — small against the bootstrap itself, but
   nonzero so rescued runs are distinguishable in virtual time. *)
let rescue_overhead_us ~target =
  positive
    (!current.modswitch_scale *. interpolate modswitch_anchors (max 1 target))

let rescue_latency_us ~target =
  bootstrap_latency_us ~target +. rescue_overhead_us ~target

(* ------------------------------------------------------------------ *)
(* Key-switching decomposition and the rotation-key cache              *)
(* ------------------------------------------------------------------ *)

(* A key switch splits into three sub-steps whose costs sum to the 0.9 x
   multcc rotate estimate above: the mod-up digit decomposition of the
   input (the part a digit cache skips), the per-digit MAC against the
   switch key, and the extended-basis mod-down (the part lazy switching
   amortizes over a whole rotate-and-sum group).  The split (and the
   aggregate's magnitude) is per-profile: the paper profile uses 50% / 25% /
   15% of one multcc; the host profile is calibrated above. *)
(* The unscaled multcc interpolation the key-switch aggregate is expressed
   in: key switching scales with [switch_scale], not [multcc_scale]. *)
let switch_base ~level = interpolate multcc_anchors (max 1 level)

let decompose_us ~level =
  !current.decompose_fraction *. (!current.switch_scale *. switch_base ~level)

let keyswitch_mac_us ~level =
  !current.mac_fraction *. (!current.switch_scale *. switch_base ~level)

let moddown_us ~level =
  !current.moddown_fraction *. (!current.switch_scale *. switch_base ~level)

(* Generating a rotation key samples and NTT-transforms one gadget row per
   digit — about two multcc sweeps of the same gadget material a key switch
   consumes, hence the switch scale. *)
let keygen_us ~level =
  2.0 *. (!current.switch_scale *. switch_base ~level)

let key_switch_us ~digits_cached ~level =
  (if digits_cached then 0.0 else decompose_us ~level)
  +. keyswitch_mac_us ~level +. moddown_us ~level

let rot_sum_us ~lazy_switch ~weighted ~members ~level =
  let m = float_of_int (max 1 members) in
  let adds = Float.max 0.0 (m -. 1.0) *. latency_us Addcc ~level in
  let weights =
    if not weighted then 0.0
    else
      (m *. latency_us Multcp ~level)
      +. (if lazy_switch then 1.0 else m) *. latency_us Rescale ~level
  in
  let switches =
    if lazy_switch then
      (* One shared digit decomposition, per-member MACs (each carrying the
         profile's extended-basis lift overhead), one mod-down. *)
      decompose_us ~level
      +. (m *. (keyswitch_mac_us ~level *. (1.0 +. !current.lazy_mac_overhead)))
      +. moddown_us ~level
    else
      (* Hoisted-eager: the decomposition is still shared across the group
         (rotation hoisting is independent of laziness) but every member
         pays its own MAC and mod-down. *)
      decompose_us ~level
      +. (m *. (keyswitch_mac_us ~level +. moddown_us ~level))
  in
  switches +. weights +. adds

let switch_key_bytes ~n ~level =
  (* A gadget-decomposed switch key holds [level] digit rows of two
     polynomials over the [level + 1]-residue extended basis, [n]
     coefficients of 8 bytes each — quadratic in level, which is what makes
     a byte-bounded cache meaningful at deep levels. *)
  let level = max 1 level in
  4 * level * (level + 1) * n * 8

let table2_anchor op ~level =
  let find anchors = List.assoc_opt level anchors in
  match op with
  | Multcc -> find multcc_anchors
  | Rescale -> find rescale_anchors
  | Modswitch -> find modswitch_anchors
  | Addcc | Addcp | Subcc | Multcp | Rotate | Encode -> None

let table3_anchor ~target = List.assoc_opt target bootstrap_anchors
