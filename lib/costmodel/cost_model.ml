type op =
  | Addcc
  | Addcp
  | Subcc
  | Multcc
  | Multcp
  | Rotate
  | Rescale
  | Modswitch
  | Encode

let op_to_string = function
  | Addcc -> "addcc"
  | Addcp -> "addcp"
  | Subcc -> "subcc"
  | Multcc -> "multcc"
  | Multcp -> "multcp"
  | Rotate -> "rotate"
  | Rescale -> "rescale"
  | Modswitch -> "modswitch"
  | Encode -> "encode"

(* Anchor tables from the paper.  Table 2: (level, latency in us). *)
let multcc_anchors = [ (1, 758.); (5, 1146.); (10, 1974.); (15, 2528.) ]
let rescale_anchors = [ (1, 126.); (5, 288.); (10, 516.); (15, 731.) ]
let modswitch_anchors = [ (1, 15.); (5, 46.); (10, 77.); (15, 107.) ]

(* Table 3: (target level, latency in us). *)
let bootstrap_anchors =
  [ (4, 294928.); (7, 339302.); (10, 384637.); (13, 423781.); (16, 463171.) ]

let table2_levels = List.map fst multcc_anchors
let table3_targets = List.map fst bootstrap_anchors

(* Piecewise-linear interpolation through anchor points, extrapolating from
   the nearest segment outside the anchor range.  Anchors are sorted and have
   at least two points. *)
let interpolate anchors x =
  let rec segment = function
    | [ (x0, y0); (x1, y1) ] -> (x0, y0, x1, y1)
    | (x0, y0) :: ((x1, y1) :: _ as rest) ->
      if x <= x1 then (x0, y0, x1, y1) else segment rest
    | [ _ ] | [] -> invalid_arg "interpolate: need at least two anchors"
  in
  let x0, y0, x1, y1 = segment anchors in
  let t = float_of_int (x - x0) /. float_of_int (x1 - x0) in
  y0 +. (t *. (y1 -. y0))

(* Clamp to a small positive floor so extrapolation below level 1 can never
   produce a non-positive latency. *)
let positive x = Float.max x 1.0

let latency_us op ~level =
  let level = max 1 level in
  let base anchors = interpolate anchors level in
  positive
    (match op with
     | Multcc -> base multcc_anchors
     | Rescale -> base rescale_anchors
     | Modswitch -> base modswitch_anchors
     | Addcc | Subcc -> 2.0 *. base modswitch_anchors
     | Addcp -> 2.0 *. base modswitch_anchors
     | Multcp -> 0.4 *. base multcc_anchors
     | Rotate -> 0.9 *. base multcc_anchors
     | Encode -> base modswitch_anchors)

let bootstrap_latency_us ~target =
  let target = max 1 target in
  positive (interpolate bootstrap_anchors target)

(* A rescue bootstrap is an unplanned bootstrap plus the monitor's
   bookkeeping: snapshotting the estimate, journaling the rescue frame and
   re-entering the interpreter.  The overhead is modeled as one modswitch
   sweep at the rescue target — small against the bootstrap itself, but
   nonzero so rescued runs are distinguishable in virtual time. *)
let rescue_overhead_us ~target =
  positive (interpolate modswitch_anchors (max 1 target))

let rescue_latency_us ~target =
  bootstrap_latency_us ~target +. rescue_overhead_us ~target

(* ------------------------------------------------------------------ *)
(* Key-switching decomposition and the rotation-key cache              *)
(* ------------------------------------------------------------------ *)

(* A key switch splits into three sub-steps whose costs sum to the 0.9 x
   multcc rotate estimate above: the mod-up digit decomposition of the
   input (the part a digit cache skips), the per-digit MAC against the
   switch key, and the extended-basis mod-down (the part lazy switching
   amortizes over a whole rotate-and-sum group). *)
let decompose_fraction = 0.50
let mac_fraction = 0.25
let moddown_fraction = 0.15

let multcc_us ~level = positive (interpolate multcc_anchors (max 1 level))
let decompose_us ~level = decompose_fraction *. multcc_us ~level
let keyswitch_mac_us ~level = mac_fraction *. multcc_us ~level
let moddown_us ~level = moddown_fraction *. multcc_us ~level

(* Generating a rotation key samples and NTT-transforms one gadget row per
   digit — about two multcc sweeps.  This is the price of a cache miss; a
   hit costs nothing, which is why a warm LRU key cache beats eager
   generation of the full rotation-key set in both time and bytes. *)
let keygen_us ~level = 2.0 *. multcc_us ~level

let key_switch_us ~digits_cached ~level =
  (if digits_cached then 0.0 else decompose_us ~level)
  +. keyswitch_mac_us ~level +. moddown_us ~level

let rot_sum_us ~lazy_switch ~weighted ~members ~level =
  let m = float_of_int (max 1 members) in
  let adds = Float.max 0.0 (m -. 1.0) *. latency_us Addcc ~level in
  let weights =
    if not weighted then 0.0
    else
      (m *. latency_us Multcp ~level)
      +. (if lazy_switch then 1.0 else m) *. latency_us Rescale ~level
  in
  let switches =
    if lazy_switch then
      (* One shared digit decomposition, per-member MACs, one mod-down. *)
      decompose_us ~level +. (m *. keyswitch_mac_us ~level) +. moddown_us ~level
    else m *. (decompose_us ~level +. keyswitch_mac_us ~level +. moddown_us ~level)
  in
  switches +. weights +. adds

let switch_key_bytes ~n ~level =
  (* A gadget-decomposed switch key holds [level] digit rows of two
     polynomials over the [level + 1]-residue extended basis, [n]
     coefficients of 8 bytes each — quadratic in level, which is what makes
     a byte-bounded cache meaningful at deep levels. *)
  let level = max 1 level in
  4 * level * (level + 1) * n * 8

let table2_anchor op ~level =
  let find anchors = List.assoc_opt level anchors in
  match op with
  | Multcc -> find multcc_anchors
  | Rescale -> find rescale_anchors
  | Modswitch -> find modswitch_anchors
  | Addcc | Addcp | Subcc | Multcp | Rotate | Encode -> None

let table3_anchor ~target = List.assoc_opt target bootstrap_anchors
