(** Latency model for RNS-CKKS operations, calibrated to the measurements
    published in the HALO paper (ASPLOS'25, Tables 2 and 3), which were taken
    with the GPU-accelerated HEaaN library on an RTX A6000.

    The paper reports latencies for [multcc], [rescale] and [modswitch] at
    operand levels 1, 5, 10 and 15 (Table 2), and for [bootstrap] at target
    levels 4, 7, 10, 13 and 16 (Table 3).  Between anchor points we
    interpolate linearly; outside we extrapolate from the nearest segment.
    This preserves the property the compiler exploits: latency grows roughly
    linearly with the number of residue polynomials processed.

    Operations the paper does not report are estimated as follows and the
    estimates only affect absolute latencies, never the relative ordering of
    compiler strategies (all strategies execute the same arithmetic ops and
    differ in bootstrapping/modswitch/pack behaviour):

    - [addcc]/[addcp]/[subcc]: element-wise over residues, modeled at 2x the
      cost of [modswitch] at the same level (both are memory-bound sweeps).
    - [multcp]: plaintext multiplication needs no relinearization; modeled at
      40% of [multcc].
    - [rotate]: dominated by key switching, same asymptotics as [multcc];
      modeled at 90% of [multcc].
    - [encode]: modeled as [modswitch]-like (FFT + scaling sweep).

    {1 Machine profiles}

    The paper numbers describe one machine (an RTX A6000 running HEaaN).
    Every latency below is additionally multiplied by the per-op scale
    factors of the active {!profile}, so the same model can be re-anchored
    to a different machine without touching the anchor tables.  The default
    {!paper_gpu} profile has every scale at exactly 1.0 — the identity, so
    default behaviour (virtual clocks, checkpointed statistics, serving
    deadlines) is bit-for-bit what the uncalibrated model produced.  The
    {!host} profile is calibrated against the committed
    [BENCH_kernels.json] / [BENCH_rotations.json] measurements of this
    repository's software backend so that {e predicted} orderings match
    {e measured} orderings on the machine the benches ran on.  Select with
    [HALO_COST_PROFILE=host] (read once at module load) or
    {!set_profile}. *)

type profile = {
  profile_name : string;
  multcc_scale : float;  (** scales [Multcc] and [Multcp] *)
  rescale_scale : float;  (** scales [Rescale] *)
  modswitch_scale : float;
      (** scales [Modswitch], [Encode] and the add family (memory sweeps) *)
  bootstrap_scale : float;  (** scales Table 3 bootstrap latencies *)
  switch_scale : float;
      (** scales the key-switch aggregate: [Rotate], the decompose / MAC /
          mod-down split and [keygen_us] *)
  decompose_fraction : float;
      (** digit-decomposition share of the aggregate, in the paper's
          fraction-of-one-multcc convention (paper: 0.50) *)
  mac_fraction : float;  (** per-digit MAC share (paper: 0.25) *)
  moddown_fraction : float;  (** extended-basis mod-down share (paper: 0.15) *)
  lazy_mac_overhead : float;
      (** extra extended-basis lift each {e lazy} rot-sum member pays, as a
          fraction of one MAC (paper: 0.0; host: calibrated so lazy loses to
          hoisting at group size 2 and wins at 4+, as measured) *)
}

val paper_gpu : profile
(** The identity profile: Tables 2–3 verbatim.  Default. *)

val host : profile
(** Calibrated to this repository's committed host benchmarks. *)

val profiles : profile list
val find_profile : string -> profile option

val current_profile : unit -> profile
val set_profile : profile -> unit

val with_profile : profile -> (unit -> 'a) -> 'a
(** Run with a temporarily-installed profile, restoring the previous one
    (also on exceptions). *)

type op =
  | Addcc
  | Addcp
  | Subcc
  | Multcc
  | Multcp
  | Rotate
  | Rescale
  | Modswitch
  | Encode

val op_to_string : op -> string

(** [latency_us op ~level] is the modeled latency, in microseconds, of [op]
    applied to operands at ciphertext level [level] (>= 1). *)
val latency_us : op -> level:int -> float

(** [bootstrap_latency_us ~target] is the modeled latency of a bootstrap whose
    result level is [target] (paper Table 3).  Latency decreases as the target
    level gets lower, which is the property exploited by HALO's target-level
    tuning (Solution B-3). *)
val bootstrap_latency_us : target:int -> float

val rescue_overhead_us : target:int -> float
(** Monitor bookkeeping charged on top of a rescue bootstrap: estimate
    snapshot, rescue-frame journaling and interpreter re-entry, modeled as
    one [modswitch] sweep at the rescue target. *)

val rescue_latency_us : target:int -> float
(** Total virtual-time cost of one rescue bootstrap at [target]:
    [bootstrap_latency_us ~target +. rescue_overhead_us ~target]. *)

(** {1 Key-switching decomposition and the rotation-key cache}

    A key switch is modeled as three sub-steps whose costs sum to the 0.9x
    [multcc] estimate of [Rotate] (scaled and re-apportioned by the active
    profile): mod-up digit decomposition (paper: 50%), the per-digit MAC
    against the switch key (25%) and the extended-basis mod-down (15%).
    Splitting them out lets the compiler and benchmarks
    price the two reuse optimizations: a digit cache skips the decomposition
    when the same ciphertext is switched again, and lazy switching pays the
    decomposition and mod-down once per rotate-and-sum group instead of once
    per member. *)

val decompose_us : level:int -> float
(** Mod-up digit decomposition of one ciphertext at [level]. *)

val keyswitch_mac_us : level:int -> float
(** One per-digit MAC accumulation against a switch key at [level]. *)

val moddown_us : level:int -> float
(** One extended-basis mod-down at [level]. *)

val keygen_us : level:int -> float
(** Generating (or deterministically regenerating) one rotation key — the
    price of a key-cache miss; a hit costs nothing. *)

val key_switch_us : digits_cached:bool -> level:int -> float
(** A full key switch; with [digits_cached] the decomposition is skipped
    (cross-op digit reuse). *)

val rot_sum_us :
  lazy_switch:bool -> weighted:bool -> members:int -> level:int -> float
(** A [members]-way rotate-and-sum reduction at [level].  [lazy_switch]
    prices the fused form (one shared decomposition, per-member MACs — each
    carrying the profile's extended-basis lift overhead — one mod-down,
    and, when [weighted], one deferred rescale); otherwise the
    hoisted-eager form (the decomposition is still shared, but every member
    pays its own MAC and mod-down).  Which form wins depends on the
    profile: under [paper_gpu] lazy always does, under [host] the
    calibrated lift overhead makes hoisted-eager cheaper for small
    groups. *)

val switch_key_bytes : n:int -> level:int -> int
(** Modeled byte size of one gadget-decomposed rotation key over [n]
    coefficients at [level]: [4 * level * (level+1) * n * 8].  Used to pick
    sensible [--key-budget] values. *)

(** Anchor points straight from the paper, exposed so that the benchmark
    harness can print Table 2 / Table 3 verbatim and tests can pin the model
    to the published numbers. *)

val table2_levels : int list
(** Operand levels of paper Table 2: [1; 5; 10; 15]. *)

val table3_targets : int list
(** Target levels of paper Table 3: [4; 7; 10; 13; 16]. *)

val table2_anchor : op -> level:int -> float option
(** The published Table 2 number for [op] at [level], if [op] is one of
    [Multcc], [Rescale], [Modswitch] and [level] is an anchor level. *)

val table3_anchor : target:int -> float option
(** The published Table 3 bootstrap number at [target] if it is an anchor. *)
