type t = {
  enc : float;
  keyswitch : float;
  rescale : float;
  bootstrap : float;
}

let default =
  { enc = 1e-7; keyswitch = 1e-8; rescale = 1e-8; bootstrap = 1e-5 }
