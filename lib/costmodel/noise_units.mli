(** Per-operation noise contribution units shared between the static
    analysis ({!Halo.Noise_budget}) and the runtime estimators threaded
    through the backends ({!Halo_ckks.Ref_backend}, {!Halo_ckks.Eval}).

    Both views use the same interval-style model over relative error:
    encryption, key switching and rescale rounding each contribute a fixed
    unit, multiplication adds the operands' bounds plus a key-switch unit,
    addition takes the larger bound, and bootstrapping resets the bound to
    its own unit.  Keeping the units in one place (visible from both
    [halo] and [halo_ckks], which cannot see each other) is what makes the
    static bound and the runtime estimate directly comparable: on a
    fault-free run the runtime estimate never exceeds the static bound. *)

type t = {
  enc : float;  (** fresh encryption *)
  keyswitch : float;  (** rotation / relinearization *)
  rescale : float;  (** rounding of one rescale *)
  bootstrap : float;  (** error of one bootstrap *)
}

val default : t
(** Calibrated to the reference backend's defaults (1e-7 encryption, 1e-5
    bootstrap, ...). *)
