module Params = Halo_ckks.Params
module Rns_poly = Halo_ckks.Rns_poly
module Eval = Halo_ckks.Eval
module Keys = Halo_ckks.Keys
module Ref_backend = Halo_ckks.Ref_backend
module Stats = Halo_runtime.Stats

type kind =
  | Rns_poly_frame
  | Ref_ct_frame
  | Lattice_ct_frame
  | Keys_frame
  | Program_frame
  | Manifest_frame
  | Entry_frame
  | Serve_manifest_frame
  | Serve_request_frame
  | Serve_entry_frame
  | Serve_plan_frame
  | Serve_quarantine_frame
  | Serve_drain_frame
  | Serve_chaos_frame
  | Rescue_frame
  | Tune_manifest_frame

let format_version = 5

(* Version 3 frames (pre key-cache statistics) remain decodable: the only
   payload difference is the stats record's trailing cache counters, which
   [decode_stats] skips for older frames. *)
let min_format_version = 3
let magic = "HALO"
let header_len = 4 + 1 + 1 + 8 + 8

let kind_tag = function
  | Rns_poly_frame -> 1
  | Ref_ct_frame -> 2
  | Lattice_ct_frame -> 3
  | Keys_frame -> 4
  | Program_frame -> 5
  | Manifest_frame -> 6
  | Entry_frame -> 7
  | Serve_manifest_frame -> 8
  | Serve_request_frame -> 9
  | Serve_entry_frame -> 10
  | Serve_plan_frame -> 11
  | Serve_quarantine_frame -> 12
  | Serve_drain_frame -> 13
  | Serve_chaos_frame -> 14
  | Rescue_frame -> 15
  | Tune_manifest_frame -> 16

let kind_name = function
  | Rns_poly_frame -> "rns_poly"
  | Ref_ct_frame -> "ref ciphertext"
  | Lattice_ct_frame -> "lattice ciphertext"
  | Keys_frame -> "key material"
  | Program_frame -> "compiled program"
  | Manifest_frame -> "run manifest"
  | Entry_frame -> "checkpoint entry"
  | Serve_manifest_frame -> "serve manifest"
  | Serve_request_frame -> "serve request"
  | Serve_entry_frame -> "serve batch entry"
  | Serve_plan_frame -> "serve plan record"
  | Serve_quarantine_frame -> "serve quarantine snapshot"
  | Serve_drain_frame -> "serve drain handoff"
  | Serve_chaos_frame -> "chaos soak state"
  | Rescue_frame -> "rescue record"
  | Tune_manifest_frame -> "tuned strategy manifest"

(* --- frames ------------------------------------------------------------ *)

let frame ~kind ~fingerprint payload =
  let body = Buffer.create 256 in
  payload body;
  let b = Buffer.create (header_len + Buffer.length body + 4) in
  Buffer.add_string b magic;
  Buffer.add_uint8 b format_version;
  Buffer.add_uint8 b (kind_tag kind);
  Buffer.add_int64_le b fingerprint;
  Buffer.add_int64_le b (Int64.of_int (Buffer.length body));
  Buffer.add_buffer b body;
  let crc = Crc32.string (Buffer.contents b) in
  Buffer.add_int32_le b crc;
  Buffer.contents b

let unframe ?path ~kind ~fingerprint s =
  let r = Wire.reader ?path s in
  let total = String.length s in
  if total < header_len + 4 then
    Wire.fail r
      ~expected:(Printf.sprintf "at least %d bytes" (header_len + 4))
      ~got:(Printf.sprintf "%d bytes" total)
      "file too short for a frame";
  let got_magic = String.sub s 0 4 in
  if not (String.equal got_magic magic) then
    Wire.fail r ~expected:(Printf.sprintf "%S" magic)
      ~got:(Printf.sprintf "%S" got_magic) "bad magic";
  r.Wire.pos <- 4;
  let version = Wire.ru8 r in
  if version < min_format_version || version > format_version then
    Wire.fail r
      ~expected:
        (Printf.sprintf "format version in [%d, %d]" min_format_version
           format_version)
      ~got:(string_of_int version) "unsupported format version";
  let tag = Wire.ru8 r in
  if tag <> kind_tag kind then
    Wire.fail r
      ~expected:(Printf.sprintf "%s (tag %d)" (kind_name kind) (kind_tag kind))
      ~got:(Printf.sprintf "tag %d" tag) "wrong artifact kind";
  let stamp = String.get_int64_le s 6 in
  r.Wire.pos <- 14;
  let len = Wire.ri64 r in
  if len < 0 || header_len + len + 4 <> total then
    Wire.fail r
      ~expected:(Printf.sprintf "payload of %d bytes" (total - header_len - 4))
      ~got:(string_of_int len) "payload length mismatch";
  let stored_crc = String.get_int32_le s (total - 4) in
  let actual_crc = Crc32.string ~pos:0 ~len:(total - 4) s in
  if not (Int32.equal stored_crc actual_crc) then begin
    r.Wire.pos <- total - 4;
    Wire.fail r
      ~expected:(Printf.sprintf "crc 0x%08lx" actual_crc)
      ~got:(Printf.sprintf "crc 0x%08lx" stored_crc)
      "checksum mismatch (bit rot or truncation)"
  end;
  (match fingerprint with
   | Some fp when not (Int64.equal fp stamp) ->
     r.Wire.pos <- 6;
     Wire.fail r
       ~expected:(Printf.sprintf "fingerprint 0x%016Lx" fp)
       ~got:(Printf.sprintf "0x%016Lx" stamp)
       "artifact was written under different parameters"
   | _ -> ());
  Wire.reader ?path ~base:header_len ~version (String.sub s header_len len)

let fingerprint_of ?path s =
  let r = Wire.reader ?path s in
  let total = String.length s in
  if total < header_len + 4 then
    Wire.fail r
      ~expected:(Printf.sprintf "at least %d bytes" (header_len + 4))
      ~got:(Printf.sprintf "%d bytes" total)
      "file too short for a frame";
  if not (String.equal (String.sub s 0 4) magic) then
    Wire.fail r ~expected:(Printf.sprintf "%S" magic)
      ~got:(Printf.sprintf "%S" (String.sub s 0 4)) "bad magic";
  let stored_crc = String.get_int32_le s (total - 4) in
  let actual_crc = Crc32.string ~pos:0 ~len:(total - 4) s in
  if not (Int32.equal stored_crc actual_crc) then
    Wire.fail r
      ~expected:(Printf.sprintf "crc 0x%08lx" actual_crc)
      ~got:(Printf.sprintf "crc 0x%08lx" stored_crc)
      "checksum mismatch (bit rot or truncation)";
  String.get_int64_le s 6

(* --- RNS polynomials ---------------------------------------------------- *)

let encode_rns b (p : Rns_poly.t) =
  Wire.u8 b (match Rns_poly.domain p with Rns_poly.Coeff -> 0 | Rns_poly.Eval -> 1);
  Wire.i64 b (Rns_poly.level p);
  Array.iter (Wire.int_array b) p.res

let decode_rns (params : Params.t) r =
  let domain =
    match Wire.ru8 r with
    | 0 -> Rns_poly.Coeff
    | 1 -> Rns_poly.Eval
    | t -> Wire.fail r ~got:(string_of_int t) "bad domain tag"
  in
  let level = Wire.ri64 r in
  if level < 1 || level > params.max_level then
    Wire.fail r
      ~expected:(Printf.sprintf "level in [1, %d]" params.max_level)
      ~got:(string_of_int level) "level out of range";
  let res =
    Array.init level (fun i ->
        let limb = Wire.rint_array r in
        if Array.length limb <> params.n then
          Wire.fail r
            ~expected:(Printf.sprintf "limb of %d residues" params.n)
            ~got:(string_of_int (Array.length limb))
            "limb length mismatch";
        let q = params.moduli.(i) in
        Array.iter
          (fun c ->
            if c < 0 || c >= q then
              Wire.fail r
                ~expected:(Printf.sprintf "residue in [0, %d)" q)
                ~got:(string_of_int c) "residue out of range")
          limb;
        limb)
  in
  Rns_poly.of_residues ~domain res

(* --- reference-backend ciphertexts -------------------------------------- *)

let encode_ref_ct b (ct : Ref_backend.ct) =
  Wire.i64 b ct.ct_level;
  Wire.f64 b ct.scale_bits;
  Wire.float_array b ct.data;
  Wire.f64 b ct.noise_est

(* The noise estimate arrived with format version 5; version-3/4 frames end
   the ciphertext here and decode with the estimate at zero (a resumed old
   run never fires a rescue, exactly as it could not before). *)
let decode_ct_noise r =
  if r.Wire.version > 4 then begin
    let est = Wire.rf64 r in
    if not (Float.is_finite est) || est < 0.0 then
      Wire.fail r ~expected:"finite non-negative noise estimate"
        ~got:(Printf.sprintf "%h" est) "bad noise estimate";
    est
  end
  else 0.0

let decode_ref_ct ~slots ~max_level r =
  let level = Wire.ri64 r in
  if level < 1 || level > max_level then
    Wire.fail r
      ~expected:(Printf.sprintf "level in [1, %d]" max_level)
      ~got:(string_of_int level) "ciphertext level out of range";
  let scale_bits = Wire.rf64 r in
  let data = Wire.rfloat_array r in
  if Array.length data <> slots then
    Wire.fail r
      ~expected:(Printf.sprintf "%d slots" slots)
      ~got:(string_of_int (Array.length data))
      "slot count mismatch";
  let noise_est = decode_ct_noise r in
  Ref_backend.make_ct ~noise_est ~data ~level ~scale_bits ()

(* --- lattice ciphertexts ------------------------------------------------ *)

let encode_lattice_ct b (ct : Eval.ct) =
  encode_rns b ct.c0;
  encode_rns b ct.c1;
  Wire.f64 b (Eval.scale ct);
  Wire.f64 b (Eval.noise_est ct)

let decode_lattice_ct params r =
  let c0 = decode_rns params r in
  let c1 = decode_rns params r in
  let scale = Wire.rf64 r in
  if Rns_poly.level c0 <> Rns_poly.level c1 then
    Wire.fail r
      ~expected:(Printf.sprintf "c1 at level %d" (Rns_poly.level c0))
      ~got:(string_of_int (Rns_poly.level c1))
      "ciphertext halves at different levels";
  if not (Float.is_finite scale) || scale <= 0.0 then
    Wire.fail r ~expected:"positive finite scale"
      ~got:(Printf.sprintf "%h" scale) "bad ciphertext scale";
  let noise_est = decode_ct_noise r in
  let ct = Eval.of_parts ~c0 ~c1 ~scale in
  Eval.set_noise_est ct noise_est;
  ct

(* --- RNG snapshots ------------------------------------------------------ *)

let encode_rng b rng = Wire.str b (Marshal.to_string (rng : Random.State.t) [])

let decode_rng r =
  let blob = Wire.rstr r in
  (* Only reached after the frame CRC validated, so the blob is exactly what
     encode_rng wrote; unmarshalling is safe. *)
  try (Marshal.from_string blob 0 : Random.State.t)
  with Failure m -> Wire.fail r ~got:m "unreadable RNG snapshot"

(* --- key material ------------------------------------------------------- *)

let encode_switch_key b sk =
  let k0, k1 = Keys.switch_key_raw sk in
  let half h =
    Wire.i64 b (Array.length h);
    Array.iter
      (fun digit ->
        Wire.i64 b (Array.length digit);
        Array.iter (Wire.int_array b) digit)
      h
  in
  half k0;
  half k1

let decode_switch_key params r =
  let half () =
    let digits = Wire.ri64 r in
    if digits < 0 || digits > 4096 then
      Wire.fail r ~got:(string_of_int digits) "absurd digit count";
    Array.init digits (fun _ ->
        let positions = Wire.ri64 r in
        if positions < 0 || positions > 4096 then
          Wire.fail r ~got:(string_of_int positions) "absurd chain length";
        Array.init positions (fun _ -> Wire.rint_array r))
  in
  let k0 = half () in
  let k1 = half () in
  try Keys.switch_key_of_raw params ~k0 ~k1
  with Invalid_argument m -> Wire.fail r ~got:m "malformed switching key"

let encode_keys b (keys : Keys.t) =
  Wire.int_array b keys.secret.coeffs;
  encode_rns b keys.pk0;
  encode_rns b keys.pk1;
  encode_switch_key b keys.relin;
  Wire.list b
    (fun b (k, sk) ->
      Wire.i64 b k;
      encode_switch_key b sk)
    (Keys.rotation_entries keys);
  encode_rng b (Keys.rng_state keys)

let decode_keys (params : Params.t) r =
  let secret = Wire.rint_array r in
  Array.iter
    (fun c ->
      if c < -1 || c > 1 then
        Wire.fail r ~expected:"ternary coefficient"
          ~got:(string_of_int c) "secret is not ternary")
    secret;
  let pk0 = decode_rns params r in
  let pk1 = decode_rns params r in
  let relin = decode_switch_key params r in
  let rotations =
    Wire.rlist r (fun r ->
        let k = Wire.ri64 r in
        let sk = decode_switch_key params r in
        (k, sk))
  in
  let rng = decode_rng r in
  try Keys.of_parts params ~secret ~pk0 ~pk1 ~relin ~rotations ~rng
  with Invalid_argument m -> Wire.fail r ~got:m "malformed key material"

(* --- compiled programs -------------------------------------------------- *)

let encode_program b p = Wire.str b (Halo.Ir_bin.encode p)

let decode_program r =
  let bytes = Wire.rstr r in
  try Halo.Ir_bin.decode bytes
  with Halo.Ir_bin.Decode_error { offset; reason } ->
    Wire.fail r
      ~got:(Printf.sprintf "decode error at program byte %d" offset)
      "malformed program: %s" reason

(* --- statistics --------------------------------------------------------- *)

let encode_stats b (s : Stats.t) =
  Wire.i64 b s.addcc;
  Wire.i64 b s.addcp;
  Wire.i64 b s.subcc;
  Wire.i64 b s.multcc;
  Wire.i64 b s.multcp;
  Wire.i64 b s.rotate;
  Wire.i64 b s.rescale;
  Wire.i64 b s.modswitch;
  Wire.i64 b s.bootstrap;
  Wire.f64 b s.total_latency_us;
  Wire.f64 b s.bootstrap_latency_us;
  Wire.i64 b s.injected_faults;
  Wire.i64 b s.retries;
  Wire.i64 b s.checkpoint_restores;
  Wire.f64 b s.backoff_us;
  Wire.i64 b s.checkpoint_writes;
  Wire.i64 b s.checkpoint_bytes;
  Wire.i64 b s.guard_trips;
  Wire.i64 b s.key_switches;
  Wire.i64 b s.hoisted_groups;
  Wire.i64 b s.decompositions_saved;
  Wire.i64 b s.deadline_aborts;
  Wire.i64 b s.key_cache_hits;
  Wire.i64 b s.key_cache_misses;
  Wire.i64 b s.key_cache_evictions;
  Wire.i64 b s.key_cache_regens;
  Wire.i64 b s.digit_reuses;
  Wire.i64 b s.lazy_rotsums;
  Wire.i64 b s.rescues;
  Wire.i64 b s.rescue_aborts;
  Wire.i64 b s.replans

let decode_stats r =
  let s = Stats.create () in
  s.Stats.addcc <- Wire.ri64 r;
  s.Stats.addcp <- Wire.ri64 r;
  s.Stats.subcc <- Wire.ri64 r;
  s.Stats.multcc <- Wire.ri64 r;
  s.Stats.multcp <- Wire.ri64 r;
  s.Stats.rotate <- Wire.ri64 r;
  s.Stats.rescale <- Wire.ri64 r;
  s.Stats.modswitch <- Wire.ri64 r;
  s.Stats.bootstrap <- Wire.ri64 r;
  s.Stats.total_latency_us <- Wire.rf64 r;
  s.Stats.bootstrap_latency_us <- Wire.rf64 r;
  s.Stats.injected_faults <- Wire.ri64 r;
  s.Stats.retries <- Wire.ri64 r;
  s.Stats.checkpoint_restores <- Wire.ri64 r;
  s.Stats.backoff_us <- Wire.rf64 r;
  s.Stats.checkpoint_writes <- Wire.ri64 r;
  s.Stats.checkpoint_bytes <- Wire.ri64 r;
  s.Stats.guard_trips <- Wire.ri64 r;
  s.Stats.key_switches <- Wire.ri64 r;
  s.Stats.hoisted_groups <- Wire.ri64 r;
  s.Stats.decompositions_saved <- Wire.ri64 r;
  s.Stats.deadline_aborts <- Wire.ri64 r;
  (* Cache counters arrived with format version 4; version-3 frames end the
     stats record here and decode with the counters at zero. *)
  if r.Wire.version > 3 then begin
    s.Stats.key_cache_hits <- Wire.ri64 r;
    s.Stats.key_cache_misses <- Wire.ri64 r;
    s.Stats.key_cache_evictions <- Wire.ri64 r;
    s.Stats.key_cache_regens <- Wire.ri64 r;
    s.Stats.digit_reuses <- Wire.ri64 r;
    s.Stats.lazy_rotsums <- Wire.ri64 r
  end;
  (* Rescue counters arrived with format version 5. *)
  if r.Wire.version > 4 then begin
    s.Stats.rescues <- Wire.ri64 r;
    s.Stats.rescue_aborts <- Wire.ri64 r;
    s.Stats.replans <- Wire.ri64 r
  end;
  s

(* --- run manifest ------------------------------------------------------- *)

type backend_cfg = {
  slots : int;
  max_level : int;
  scale_bits : int;
  seed : int;
  enc_noise : float;
  mult_noise : float;
  boot_noise : float;
  rescale_noise : float;
}

type manifest = {
  prog : Halo.Ir.program;
  strategy : string;
  bindings : (string * int) list;
  inputs : (string * float array) list;
  backend : backend_cfg;
  every_n : int;
  retain : int;
  guard_every : int;
  guard_margin : float;
  rescue : bool;
  rescue_margin : float;
  max_rescues : int;
}

let encode_manifest b m =
  encode_program b m.prog;
  Wire.str b m.strategy;
  Wire.list b
    (fun b (n, v) ->
      Wire.str b n;
      Wire.i64 b v)
    m.bindings;
  Wire.list b
    (fun b (n, v) ->
      Wire.str b n;
      Wire.float_array b v)
    m.inputs;
  Wire.i64 b m.backend.slots;
  Wire.i64 b m.backend.max_level;
  Wire.i64 b m.backend.scale_bits;
  Wire.i64 b m.backend.seed;
  Wire.f64 b m.backend.enc_noise;
  Wire.f64 b m.backend.mult_noise;
  Wire.f64 b m.backend.boot_noise;
  Wire.f64 b m.backend.rescale_noise;
  Wire.i64 b m.every_n;
  Wire.i64 b m.retain;
  Wire.i64 b m.guard_every;
  Wire.f64 b m.guard_margin;
  Wire.u8 b (if m.rescue then 1 else 0);
  Wire.f64 b m.rescue_margin;
  Wire.i64 b m.max_rescues

let decode_manifest r =
  let prog = decode_program r in
  let strategy = Wire.rstr r in
  let bindings =
    Wire.rlist r (fun r ->
        let n = Wire.rstr r in
        let v = Wire.ri64 r in
        (n, v))
  in
  let inputs =
    Wire.rlist r (fun r ->
        let n = Wire.rstr r in
        let v = Wire.rfloat_array r in
        (n, v))
  in
  let slots = Wire.ri64 r in
  let max_level = Wire.ri64 r in
  let scale_bits = Wire.ri64 r in
  let seed = Wire.ri64 r in
  let enc_noise = Wire.rf64 r in
  let mult_noise = Wire.rf64 r in
  let boot_noise = Wire.rf64 r in
  let rescale_noise = Wire.rf64 r in
  let every_n = Wire.ri64 r in
  let retain = Wire.ri64 r in
  let guard_every = Wire.ri64 r in
  (* Guard-margin and rescue knobs arrived with format version 5; older
     manifests resume with the historical defaults (margin 10, no rescue). *)
  let guard_margin, rescue, rescue_margin, max_rescues =
    if r.Wire.version > 4 then begin
      let gm = Wire.rf64 r in
      let rescue =
        match Wire.ru8 r with
        | 0 -> false
        | 1 -> true
        | t -> Wire.fail r ~got:(string_of_int t) "bad rescue flag"
      in
      let rm = Wire.rf64 r in
      let mr = Wire.ri64 r in
      if not (Float.is_finite gm) || gm <= 0.0 then
        Wire.fail r ~expected:"positive finite guard margin"
          ~got:(Printf.sprintf "%h" gm) "bad guard margin";
      if not (Float.is_finite rm) || rm < 1.0 then
        Wire.fail r ~expected:"finite rescue margin >= 1"
          ~got:(Printf.sprintf "%h" rm) "bad rescue margin";
      if mr < 0 then
        Wire.fail r ~got:(string_of_int mr) "negative rescue budget";
      (gm, rescue, rm, mr)
    end
    else
      ( Halo_runtime.Guard.default_margin,
        false,
        Halo_runtime.Noise_monitor.default_rescue_margin,
        Halo_runtime.Noise_monitor.default_max_rescues )
  in
  if every_n < 1 then
    Wire.fail r ~got:(string_of_int every_n) "cadence below 1";
  if retain < 1 then Wire.fail r ~got:(string_of_int retain) "retention below 1";
  if guard_every < 0 then
    Wire.fail r ~got:(string_of_int guard_every) "negative guard cadence";
  {
    prog;
    strategy;
    bindings;
    inputs;
    backend =
      { slots; max_level; scale_bits; seed; enc_noise; mult_noise; boot_noise; rescale_noise };
    every_n;
    retain;
    guard_every;
    guard_margin;
    rescue;
    rescue_margin;
    max_rescues;
  }

let manifest_fingerprint m =
  let b = Buffer.create 1024 in
  encode_manifest b m;
  Int64.logor
    (Int64.logand (Int64.of_int32 (Crc32.string (Buffer.contents b))) 0xFFFFFFFFL)
    (Int64.shift_left (Int64.of_int (Buffer.length b land 0xFFFFFF)) 32)

(* --- checkpoint entries ------------------------------------------------- *)

type 'ct carried = Plain of float array | Cipher of 'ct

type 'ct entry = {
  seq : int;
  loop_var : int;
  iter : int;
  carried : 'ct carried list;
  rng : Random.State.t;
  stats : Stats.t;
}

let encode_entry ~enc_ct b e =
  Wire.i64 b e.seq;
  Wire.i64 b e.loop_var;
  Wire.i64 b e.iter;
  Wire.list b
    (fun b -> function
      | Plain v ->
        Wire.u8 b 0;
        Wire.float_array b v
      | Cipher ct ->
        Wire.u8 b 1;
        enc_ct b ct)
    e.carried;
  encode_rng b e.rng;
  encode_stats b e.stats

let decode_entry ~dec_ct r =
  let seq = Wire.ri64 r in
  let loop_var = Wire.ri64 r in
  let iter = Wire.ri64 r in
  if seq < 0 then Wire.fail r ~got:(string_of_int seq) "negative sequence";
  if iter < 0 then Wire.fail r ~got:(string_of_int iter) "negative iteration";
  let carried =
    Wire.rlist r (fun r ->
        match Wire.ru8 r with
        | 0 -> Plain (Wire.rfloat_array r)
        | 1 -> Cipher (dec_ct r)
        | t -> Wire.fail r ~got:(string_of_int t) "bad carried-value tag")
  in
  let rng = decode_rng r in
  let stats = decode_stats r in
  { seq; loop_var; iter; carried; rng; stats }

(* --- rescue records ------------------------------------------------------ *)

let encode_rescue b (e : Halo_runtime.Noise_monitor.rescue_event) =
  Wire.i64 b e.r_seq;
  Wire.i64 b e.r_target;
  Wire.f64 b e.r_before;
  Wire.f64 b e.r_after

let decode_rescue r : Halo_runtime.Noise_monitor.rescue_event =
  let r_seq = Wire.ri64 r in
  let r_target = Wire.ri64 r in
  let r_before = Wire.rf64 r in
  let r_after = Wire.rf64 r in
  if r_seq < 0 then
    Wire.fail r ~got:(string_of_int r_seq) "negative rescue sequence";
  if r_target < 1 then
    Wire.fail r ~got:(string_of_int r_target) "rescue target below 1";
  if not (Float.is_finite r_before) || r_before < 0.0 then
    Wire.fail r ~expected:"finite non-negative estimate"
      ~got:(Printf.sprintf "%h" r_before) "bad pre-rescue estimate";
  if not (Float.is_finite r_after) || r_after < 0.0 then
    Wire.fail r ~expected:"finite non-negative estimate"
      ~got:(Printf.sprintf "%h" r_after) "bad post-rescue estimate";
  { r_seq; r_target; r_before; r_after }
