let table =
  lazy
    (Array.init 256 (fun i ->
         let c = ref (Int32.of_int i) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
             else Int32.shift_right_logical !c 1
         done;
         !c))

let string ?(pos = 0) ?len s =
  let len = match len with Some l -> l | None -> String.length s - pos in
  let table = Lazy.force table in
  let crc = ref 0xFFFFFFFFl in
  for i = pos to pos + len - 1 do
    let idx = Int32.to_int (Int32.logand (Int32.logxor !crc (Int32.of_int (Char.code s.[i]))) 0xFFl) in
    crc := Int32.logxor table.(idx) (Int32.shift_right_logical !crc 8)
  done;
  Int32.logxor !crc 0xFFFFFFFFl
