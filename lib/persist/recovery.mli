(** Crash recovery driver: wires the checkpoint journal into
    {!Halo_runtime.Resilient}'s durable-checkpoint hooks.

    {2 Recovery model}

    A checkpointed run is deterministic end to end (seeded backend RNG, the
    simulated-backoff retry layer, no wall-clock dependence), so recovery
    does not need to snapshot the whole interpreter: it re-executes the
    cheap pre-loop prefix from scratch — bit-identical by determinism —
    and fast-forwards each top-level [For] to its newest intact journal
    entry, restoring the loop-carried values, the backend RNG and the
    statistics counters recorded with that entry.  Iterations after the
    last checkpoint (cadence > 1) re-execute from the restored RNG and are
    therefore also bit-identical.  The result: a run killed at any point
    and resumed produces outputs {e bit-identical} to an uninterrupted
    run's.

    {2 Statistics}

    Each journal entry embeds a statistics snapshot that already accounts
    for the entry's own write (the frame length is independent of the
    counter values, all fields being fixed-width, so the size is known
    before the final encode).  Restoring a snapshot with
    [Stats.assign] therefore reproduces exactly the counters an
    uninterrupted run would show at that point. *)

module Make (B : Halo_runtime.Backend.S) : sig
  module R : module type of Halo_runtime.Resilient.Make (B)

  (** Ciphertext codec and RNG access for the backend, closed over its
      state. *)
  type ct_codec = {
    enc_ct : Buffer.t -> B.ct -> unit;
    dec_ct : Wire.reader -> B.ct;
    rng_state : unit -> Random.State.t;
    set_rng_state : Random.State.t -> unit;
  }

  val checkpoint_hooks :
    codec:ct_codec ->
    journal:Journal.t ->
    every_n:int ->
    stats:Halo_runtime.Stats.t ->
    resume:B.ct Journal.scan option ->
    R.checkpoint
  (** The hooks to pass to [R.run ~checkpoint].

      The sink writes a journal entry after every [every_n]-th completed
      top-level iteration and counts it in
      [stats.checkpoint_writes]/[checkpoint_bytes].

      When [resume] is [Some scan], the entry hook fast-forwards each
      top-level loop to its newest intact entry (consumed once per loop
      variable): carried values reinstated, backend RNG restored through
      the codec, [stats] overwritten with the entry's snapshot.  Entries at
      or beyond the loop's iteration count are ignored (stale journal from
      different bindings would otherwise skip the loop wholesale — the
      fingerprint check normally rules this out, but defense in depth is
      cheap). *)
end
