(** CRC-32 (IEEE 802.3, polynomial [0xEDB88320]), table-driven.

    Every frame the artifact store writes ends in the CRC of everything
    before it, so a bit flip anywhere — header or body — is detected before
    a single field is trusted. *)

val string : ?pos:int -> ?len:int -> string -> int32
(** Checksum of [len] bytes of [s] starting at [pos] (defaults: the whole
    string). *)
