type t = {
  dir : string;
  fingerprint : int64;
  retain : int;
  mutable next_seq : int;
}

let dir t = t.dir

let entry_name ~seq ~loop_var ~iter =
  Printf.sprintf "entry-%010d-v%d-i%d.ckpt" seq loop_var iter

(* [entry-<seq>-v<loop_var>-i<iter>.ckpt] -> (seq, loop_var, iter) *)
let parse_name name =
  if Filename.check_suffix name ".ckpt" then
    try Scanf.sscanf name "entry-%d-v%d-i%d.ckpt%!" (fun s v i -> Some (s, v, i))
    with Scanf.Scan_failure _ | Failure _ | End_of_file -> None
  else None

let list_entries dirname =
  match Sys.readdir dirname with
  | files ->
    Array.to_list files
    |> List.filter_map (fun f ->
           match parse_name f with Some k -> Some (f, k) | None -> None)
    |> List.sort (fun (_, (s1, _, _)) (_, (s2, _, _)) -> compare s2 s1)
  | exception Sys_error m ->
    Halo_error.persist_error ~path:dirname "unreadable journal directory: %s" m

let rec mkdir_p d =
  if not (Sys.file_exists d) then begin
    mkdir_p (Filename.dirname d);
    try Unix.mkdir d 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let open_ ~dir ~fingerprint ~retain =
  if retain < 1 then invalid_arg "Journal.open_: retain must be >= 1";
  mkdir_p dir;
  let next_seq =
    List.fold_left
      (fun acc (_, (seq, _, _)) -> max acc (seq + 1))
      0 (list_entries dir)
  in
  { dir; fingerprint; retain; next_seq }

let prune t ~loop_var =
  let for_loop =
    List.filter (fun (_, (_, v, _)) -> v = loop_var) (list_entries t.dir)
  in
  let excess = List.filteri (fun i _ -> i >= t.retain) for_loop in
  if excess <> [] then begin
    List.iter
      (fun (f, _) ->
        try Unix.unlink (Filename.concat t.dir f)
        with Unix.Unix_error _ -> ())
      excess;
    Store.fsync_dir t.dir
  end

let append t ~enc_ct (e : _ Codec.entry) =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  let e = { e with Codec.seq } in
  let frame =
    Codec.frame ~kind:Codec.Entry_frame ~fingerprint:t.fingerprint (fun b ->
        Codec.encode_entry ~enc_ct b e)
  in
  Store.write_file
    (Filename.concat t.dir (entry_name ~seq ~loop_var:e.loop_var ~iter:e.iter))
    frame;
  prune t ~loop_var:e.loop_var;
  (seq, String.length frame)

type 'ct scan = {
  entries : 'ct Codec.entry list;
  damaged : (string * string) list;
}

let scan ~dir ~fingerprint ~dec_ct =
  let entries = ref [] and damaged = ref [] in
  List.iter
    (fun (f, (seq, loop_var, iter)) ->
      let path = Filename.concat dir f in
      match
        let r =
          Codec.unframe ~path ~kind:Codec.Entry_frame
            ~fingerprint:(Some fingerprint) (Store.read_file path)
        in
        let e = Codec.decode_entry ~dec_ct r in
        Wire.expect_end r ~what:"checkpoint entry";
        e
      with
      | e ->
        (* The filename triple is display metadata; the checksummed payload
           is authoritative.  A mismatch means the file was renamed or
           spliced — treat it as damage, not as a valid entry. *)
        if e.Codec.seq <> seq || e.Codec.loop_var <> loop_var || e.Codec.iter <> iter
        then
          damaged :=
            ( f,
              Printf.sprintf
                "filename says seq=%d var=%d iter=%d but payload says seq=%d \
                 var=%d iter=%d"
                seq loop_var iter e.Codec.seq e.Codec.loop_var e.Codec.iter )
            :: !damaged
        else entries := e :: !entries
      | exception (Halo_error.Persist_error _ as exn) ->
        damaged := (f, Halo_error.to_string exn) :: !damaged)
    (List.rev (list_entries dir));
  {
    entries =
      List.sort (fun a b -> compare b.Codec.seq a.Codec.seq) !entries;
    damaged = List.rev !damaged;
  }

let newest_for s ~loop_var =
  List.find_opt (fun e -> e.Codec.loop_var = loop_var) s.entries
