module Ref_backend = Halo_ckks.Ref_backend
module Stats = Halo_runtime.Stats
module Rec = Recovery.Make (Ref_backend)
module R = Rec.R
module I = R.I

exception Simulated_crash of { writes : int }

let manifest_path dir = Filename.concat dir "manifest.halo"
let journal_dir dir = Filename.concat dir "journal"

let backend_of_cfg (c : Codec.backend_cfg) =
  Ref_backend.create ~seed:c.seed ~enc_noise:c.enc_noise
    ~mult_noise:c.mult_noise ~boot_noise:c.boot_noise
    ~rescale_noise:c.rescale_noise ~slots:c.slots ~max_level:c.max_level
    ~scale_bits:c.scale_bits ()

let start ~dir (m : Codec.manifest) =
  (* Journal.open_ creates <dir> and <dir>/journal. *)
  ignore
    (Journal.open_ ~dir:(journal_dir dir)
       ~fingerprint:(Codec.manifest_fingerprint m) ~retain:m.retain);
  Store.save_manifest ~path:(manifest_path dir) m

let load ~dir = Store.load_manifest ~path:(manifest_path dir)

(* Structural sanity of the carried values: levels in range and every slot
   finite.  On the reference backend a noise spike or a mis-computation
   shows up as a non-finite or wildly out-of-range slot long before
   decrypt; this is the cheap in-loop tripwire, not the full decrypt-time
   noise-budget guard. *)
let guard_check ~index:_ values =
  List.for_all
    (function
      | I.Plain a -> Array.for_all Float.is_finite a
      | I.Cipher (ct : Ref_backend.ct) ->
        ct.ct_level >= 1 && Array.for_all Float.is_finite ct.data)
    values

let rescue_path dir seq =
  Filename.concat (journal_dir dir) (Printf.sprintf "rescue-%d.ckpt" seq)

let exec ?kill_after ~dir ~resume (m : Codec.manifest) =
  let fp = Codec.manifest_fingerprint m in
  let jdir = journal_dir dir in
  let journal = Journal.open_ ~dir:jdir ~fingerprint:fp ~retain:m.retain in
  let st = backend_of_cfg m.backend in
  let codec =
    {
      Rec.enc_ct = Codec.encode_ref_ct;
      dec_ct =
        Codec.decode_ref_ct ~slots:m.backend.slots
          ~max_level:m.backend.max_level;
      rng_state = (fun () -> Ref_backend.rng_state st);
      set_rng_state = (fun r -> Ref_backend.set_rng_state st r);
    }
  in
  let scan, damaged =
    if resume then begin
      let s = Journal.scan ~dir:jdir ~fingerprint:fp ~dec_ct:codec.dec_ct in
      (Some s, s.Journal.damaged)
    end
    else (None, [])
  in
  let stats = Stats.create () in
  let hooks =
    Rec.checkpoint_hooks ~codec ~journal ~every_n:m.every_n ~stats ~resume:scan
  in
  let hooks =
    match kill_after with
    | None -> hooks
    | Some k ->
      {
        hooks with
        R.sink =
          (fun ~loop_var ~index v ->
            hooks.R.sink ~loop_var ~index v;
            if stats.Stats.checkpoint_writes >= k then
              raise (Simulated_crash { writes = stats.Stats.checkpoint_writes }));
      }
  in
  let guard =
    if m.guard_every > 0 then
      Some { R.guard_every = m.guard_every; guard_check }
    else None
  in
  let monitor =
    if not m.rescue then None
    else begin
      let report = Halo.Noise_budget.analyze m.prog in
      let threshold =
        Halo.Noise_budget.threshold ~margin:m.guard_margin report
      in
      let cfg =
        Halo_runtime.Noise_monitor.config ~rescue_margin:m.rescue_margin
          ~max_rescues:m.max_rescues ~threshold ()
      in
      (* Rescue files are keyed by sequence number: a resume that replays a
         rescue rewrites the same bytes to the same name, so the audit trail
         of an interrupted run converges to the uninterrupted one's. *)
      let on_rescue (e : Halo_runtime.Noise_monitor.rescue_event) =
        Store.save_rescue ~path:(rescue_path dir e.r_seq) ~fingerprint:fp e
      in
      Some (Rec.R.M.create ~on_rescue ~cfg ~stats ())
    end
  in
  let outcome =
    R.run ~checkpoint:hooks ?guard ?monitor ~stats st ~bindings:m.bindings
      ~inputs:m.inputs m.prog
  in
  (outcome, damaged)
