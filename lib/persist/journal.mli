(** Write-ahead checkpoint journal: one file per entry, atomically appended.

    A journal directory contains files named
    [entry-<seq>-v<loop_var>-i<iter>.ckpt], each a single
    {!Codec.Entry_frame} stamped with the run's manifest fingerprint.
    Appends go through {!Store.write_file} (tmp + rename + fsync), so a
    crash mid-append leaves at most a stray [*.tmp.*] that scans ignore —
    the journal never contains a half-written entry under a real name.

    Retention is per loop variable: after each append, all but the newest
    [retain] entries for that loop are unlinked.  Sequence numbers are
    monotone and continue across resumes ({!open_} scans the directory for
    the highest existing sequence). *)

type t

val open_ : dir:string -> fingerprint:int64 -> retain:int -> t
(** Creates [dir] if needed; scans it so the next append continues the
    sequence.  [retain < 1] is an [Invalid_argument]. *)

val dir : t -> string

val append :
  t -> enc_ct:(Buffer.t -> 'ct -> unit) -> 'ct Codec.entry -> int * int
(** Durably append one entry (the entry's [seq] is assigned by the journal,
    overriding the field) and prune old entries for the same loop.  Returns
    [(seq, bytes)] — the assigned sequence number and the entry's on-disk
    size. *)

type 'ct scan = {
  entries : 'ct Codec.entry list;  (** intact entries, newest first *)
  damaged : (string * string) list;
      (** files discarded by validation: [(filename, reason)] *)
}

val scan : dir:string -> fingerprint:int64 -> dec_ct:(Wire.reader -> 'ct) -> 'ct scan
(** Validate every entry in the journal.  Truncated, bit-flipped,
    wrong-version, wrong-fingerprint or otherwise malformed files are
    reported in [damaged] and excluded — a corrupt tail never aborts
    recovery, it just falls back to the previous intact entry.  Temporary
    files ([*.tmp.*]) are ignored entirely. *)

val newest_for : 'ct scan -> loop_var:int -> 'ct Codec.entry option
(** The intact entry with the highest sequence number for the given loop
    variable, if any. *)
