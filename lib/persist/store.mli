(** Durable artifact store: atomic file writes and typed load/save wrappers
    over {!Codec} frames.

    {2 Atomicity protocol}

    Every write goes through {!write_file}: the frame is written to a
    [.tmp.<pid>] sibling, the temporary file's data is [fsync]ed, the file
    is [rename]d over the destination (atomic within a POSIX filesystem),
    and finally the containing directory is [fsync]ed so the rename itself
    is durable.  A crash at any point leaves either the old file, no file,
    or a stray [*.tmp.*] that readers ignore — never a half-written
    artifact under the real name. *)

module Params = Halo_ckks.Params
module Rns_poly = Halo_ckks.Rns_poly
module Eval = Halo_ckks.Eval
module Keys = Halo_ckks.Keys

val write_file : string -> string -> unit
(** [write_file path bytes] durably and atomically replaces [path]. *)

val read_file : string -> string
(** Raises {!Halo_error.Persist_error} when the file is missing or
    unreadable. *)

val fsync_dir : string -> unit
(** Flush directory metadata (new names / unlinks) to disk.  Best-effort:
    filesystems that refuse to fsync a directory are ignored. *)

(** {2 Typed artifacts}

    Each saver stamps the frame with the parameter fingerprint; each loader
    re-derives the expected stamp from its own parameters and rejects the
    file on mismatch. *)

val save_rns : Params.t -> path:string -> Rns_poly.t -> unit
val load_rns : Params.t -> path:string -> Rns_poly.t

val save_lattice_ct : Params.t -> path:string -> Eval.ct -> unit
val load_lattice_ct : Params.t -> path:string -> Eval.ct

val save_keys : Params.t -> path:string -> Keys.t -> unit
val load_keys : Params.t -> path:string -> Keys.t

val save_program : path:string -> Halo.Ir.program -> unit
(** Programs are parameter-independent; their frames are stamped 0. *)

val load_program : path:string -> Halo.Ir.program

val save_manifest : path:string -> Codec.manifest -> unit
(** Stamped with {!Codec.manifest_fingerprint} so journal entries and the
    manifest that produced them can be cross-checked. *)

val load_manifest : path:string -> Codec.manifest

val save_rescue :
  path:string ->
  fingerprint:int64 ->
  Halo_runtime.Noise_monitor.rescue_event ->
  unit
(** One [rescue-<seq>.ckpt] audit record, stamped with the manifest
    fingerprint of the run that fired it.  Rescue files are keyed by
    sequence number and rewritten idempotently, so a resumed run replaying
    the same rescue decisions leaves byte-identical files. *)

val load_rescue :
  path:string -> fingerprint:int64 -> Halo_runtime.Noise_monitor.rescue_event
