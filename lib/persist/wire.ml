let u8 b v = Buffer.add_uint8 b v
let i64 b v = Buffer.add_int64_le b (Int64.of_int v)
let f64 b v = Buffer.add_int64_le b (Int64.bits_of_float v)

let str b s =
  i64 b (String.length s);
  Buffer.add_string b s

let int_array b a =
  i64 b (Array.length a);
  Array.iter (i64 b) a

let float_array b a =
  i64 b (Array.length a);
  Array.iter (f64 b) a

let list b f xs =
  i64 b (List.length xs);
  List.iter (f b) xs

type reader = {
  src : string;
  path : string option;
  base : int;
  version : int;
  mutable pos : int;
}

let reader ?path ?(base = 0) ?(version = max_int) src =
  { src; path; base; version; pos = 0 }

let fail r ?expected ?got fmt =
  Halo_error.persist_error ?path:r.path ~offset:(r.base + r.pos) ?expected ?got fmt

let need r n =
  let remain = String.length r.src - r.pos in
  if n < 0 || n > remain then
    fail r ~expected:(Printf.sprintf "%d bytes" n)
      ~got:(Printf.sprintf "%d bytes" remain)
      "truncated field"

let ru8 r =
  need r 1;
  let v = Char.code r.src.[r.pos] in
  r.pos <- r.pos + 1;
  v

let ri64 r =
  need r 8;
  let v = Int64.to_int (String.get_int64_le r.src r.pos) in
  r.pos <- r.pos + 8;
  v

let rf64 r =
  need r 8;
  let v = Int64.float_of_bits (String.get_int64_le r.src r.pos) in
  r.pos <- r.pos + 8;
  v

let rlen r =
  let n = ri64 r in
  if n < 0 then fail r ~got:(string_of_int n) "negative length";
  n

let rstr r =
  let n = rlen r in
  need r n;
  let s = String.sub r.src r.pos n in
  r.pos <- r.pos + n;
  s

let rint_array r =
  let n = rlen r in
  need r (8 * n);
  Array.init n (fun _ -> ri64 r)

let rfloat_array r =
  let n = rlen r in
  need r (8 * n);
  Array.init n (fun _ -> rf64 r)

let rlist r f =
  let n = rlen r in
  List.init n (fun _ -> f r)

let expect_end r ~what =
  let remain = String.length r.src - r.pos in
  if remain <> 0 then
    fail r ~expected:(Printf.sprintf "end of %s" what)
      ~got:(Printf.sprintf "%d trailing bytes" remain)
      "trailing garbage"
