(** Checkpointed execution driver for the reference backend: the glue used
    by [halo_cli run --checkpoint-dir], [halo_cli resume], the crash-recovery
    soak mode and the test suite.

    A checkpoint directory holds a [manifest.halo] (everything needed to
    restart: compiled program, bindings, input vectors, backend
    configuration, cadences) and a [journal/] of checkpoint entries.  All
    writes are atomic and fsynced ({!Store}), so the directory is valid
    after a kill at any instant. *)

module Rec : module type of Recovery.Make (Halo_ckks.Ref_backend)

exception Simulated_crash of { writes : int }
(** Raised (when [kill_after] is set) right after the [writes]-th durable
    checkpoint append — from the process's point of view an abrupt abort,
    from the journal's point of view indistinguishable from a SIGKILL,
    since every preceding append is already fsynced. *)

val manifest_path : string -> string
(** [<dir>/manifest.halo] *)

val journal_dir : string -> string
(** [<dir>/journal] *)

val rescue_path : string -> int -> string
(** [<dir>/journal/rescue-<seq>.ckpt] — one audit record per fired rescue
    bootstrap (the journal scanner ignores these names). *)

val start : dir:string -> Codec.manifest -> unit
(** Create the directory structure and durably write the manifest.  Must be
    called once before the first {!exec} on a fresh directory. *)

val load : dir:string -> Codec.manifest
(** Load and validate the manifest of an existing checkpoint directory. *)

val exec :
  ?kill_after:int ->
  dir:string ->
  resume:bool ->
  Codec.manifest ->
  Rec.R.outcome * (string * string) list
(** Run the manifest's program under the resilient runtime with the journal
    sink attached (and the in-loop guard, when [manifest.guard_every > 0];
    and the runtime noise monitor, when [manifest.rescue] — each fired
    rescue bootstrap is journaled to {!rescue_path} keyed by its sequence
    number, so kill/resume leaves byte-identical rescue records).

    With [resume:true] the journal is scanned first: each top-level loop
    fast-forwards to its newest intact entry, and damaged entries are
    returned as [(filename, reason)] warnings — never an exception.  With
    [resume:false] existing entries are ignored (a fresh run re-executes
    from the start and overwrites the journal by retention).

    [kill_after] simulates a crash by raising {!Simulated_crash} after that
    many checkpoint appends (counting restored writes on resume). *)
