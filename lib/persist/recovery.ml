module Stats = Halo_runtime.Stats

module Make (B : Halo_runtime.Backend.S) = struct
  module R = Halo_runtime.Resilient.Make (B)
  module I = R.I

  type ct_codec = {
    enc_ct : Buffer.t -> B.ct -> unit;
    dec_ct : Wire.reader -> B.ct;
    rng_state : unit -> Random.State.t;
    set_rng_state : Random.State.t -> unit;
  }

  let carried_of_value = function
    | I.Plain a -> Codec.Plain a
    | I.Cipher c -> Codec.Cipher c

  let value_of_carried = function
    | Codec.Plain a -> I.Plain a
    | Codec.Cipher c -> I.Cipher c

  (* Loops without a result variable cannot occur in checkpointed programs
     (every [For] yields), but the hook type allows [None]; key them apart
     from any real SSA variable. *)
  let var_key = function Some v -> v | None -> -1

  let checkpoint_hooks ~codec ~journal ~every_n ~stats ~resume =
    if every_n < 1 then invalid_arg "Recovery.checkpoint_hooks: every_n < 1";
    let sink ~loop_var ~index values =
      if (index + 1) mod every_n = 0 then begin
        (* The snapshot stored with the entry must already include this
           write's accounting, so that restoring it reproduces the counters
           of an uninterrupted run.  Every stats field is fixed-width, so
           the frame length does not depend on the counter values: encode
           once to learn the size, then encode the final snapshot. *)
        let snap = Stats.create () in
        Stats.assign ~into:snap stats;
        Stats.record_checkpoint_write snap ~bytes:0;
        let entry rng =
          {
            Codec.seq = 0 (* assigned by the journal *);
            loop_var = var_key loop_var;
            iter = index;
            carried = List.map carried_of_value values;
            rng;
            stats = snap;
          }
        in
        let rng = codec.rng_state () in
        let probe =
          Codec.frame ~kind:Codec.Entry_frame ~fingerprint:0L (fun b ->
              Codec.encode_entry ~enc_ct:codec.enc_ct b (entry rng))
        in
        let bytes = String.length probe in
        snap.Stats.checkpoint_bytes <- stats.Stats.checkpoint_bytes + bytes;
        let _seq, written = Journal.append journal ~enc_ct:codec.enc_ct (entry rng) in
        assert (written = bytes);
        Stats.record_checkpoint_write stats ~bytes
      end
    in
    let consumed = Hashtbl.create 4 in
    let entry ~loop_var ~count =
      match resume with
      | None -> None
      | Some scan ->
        let key = var_key loop_var in
        if Hashtbl.mem consumed key then None
        else begin
          Hashtbl.replace consumed key ();
          match Journal.newest_for scan ~loop_var:key with
          | Some e when e.Codec.iter < count ->
            codec.set_rng_state e.Codec.rng;
            Stats.assign ~into:stats e.Codec.stats;
            Some (e.Codec.iter + 1, List.map value_of_carried e.Codec.carried)
          | Some _ | None -> None
        end
    in
    { R.sink; entry }
end
