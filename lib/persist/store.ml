module Params = Halo_ckks.Params
module Rns_poly = Halo_ckks.Rns_poly
module Eval = Halo_ckks.Eval
module Keys = Halo_ckks.Keys

let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | fd ->
    Fun.protect
      ~finally:(fun () -> Unix.close fd)
      (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())
  | exception Unix.Unix_error _ -> ()

let write_file path bytes =
  let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
  (try
     let fd =
       Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
     in
     Fun.protect
       ~finally:(fun () -> Unix.close fd)
       (fun () ->
         let n = String.length bytes in
         let written = Unix.write_substring fd bytes 0 n in
         if written <> n then
           Halo_error.persist_error ~path:tmp
             ~expected:(string_of_int n) ~got:(string_of_int written)
             "short write";
         Unix.fsync fd);
     Unix.rename tmp path
   with Unix.Unix_error (e, _, _) ->
     (try Unix.unlink tmp with Unix.Unix_error _ -> ());
     Halo_error.persist_error ~path "write failed: %s" (Unix.error_message e));
  fsync_dir (Filename.dirname path)

let read_file path =
  try
    let ic = In_channel.open_bin path in
    Fun.protect
      ~finally:(fun () -> In_channel.close ic)
      (fun () -> In_channel.input_all ic)
  with Sys_error m -> Halo_error.persist_error ~path "unreadable file: %s" m

let save path frame = write_file path frame

let load ?fingerprint ~kind path =
  Codec.unframe ~path ~kind ~fingerprint (read_file path)

let save_rns params ~path p =
  save path
    (Codec.frame ~kind:Codec.Rns_poly_frame
       ~fingerprint:(Params.fingerprint params)
       (fun b -> Codec.encode_rns b p))

let load_rns params ~path =
  let r =
    load ~fingerprint:(Params.fingerprint params) ~kind:Codec.Rns_poly_frame
      path
  in
  let p = Codec.decode_rns params r in
  Wire.expect_end r ~what:"rns polynomial";
  p

let save_lattice_ct params ~path ct =
  save path
    (Codec.frame ~kind:Codec.Lattice_ct_frame
       ~fingerprint:(Params.fingerprint params)
       (fun b -> Codec.encode_lattice_ct b ct))

let load_lattice_ct params ~path =
  let r =
    load ~fingerprint:(Params.fingerprint params) ~kind:Codec.Lattice_ct_frame
      path
  in
  let ct = Codec.decode_lattice_ct params r in
  Wire.expect_end r ~what:"ciphertext";
  ct

let save_keys params ~path keys =
  save path
    (Codec.frame ~kind:Codec.Keys_frame
       ~fingerprint:(Params.fingerprint params)
       (fun b -> Codec.encode_keys b keys))

let load_keys params ~path =
  let r =
    load ~fingerprint:(Params.fingerprint params) ~kind:Codec.Keys_frame path
  in
  let keys = Codec.decode_keys params r in
  Wire.expect_end r ~what:"key material";
  keys

let save_program ~path prog =
  save path
    (Codec.frame ~kind:Codec.Program_frame ~fingerprint:0L (fun b ->
         Codec.encode_program b prog))

let load_program ~path =
  let r = load ~fingerprint:0L ~kind:Codec.Program_frame path in
  let p = Codec.decode_program r in
  Wire.expect_end r ~what:"program";
  p

let save_manifest ~path m =
  save path
    (Codec.frame ~kind:Codec.Manifest_frame
       ~fingerprint:(Codec.manifest_fingerprint m) (fun b ->
         Codec.encode_manifest b m))

let load_manifest ~path =
  let r = load ~kind:Codec.Manifest_frame path in
  let m = Codec.decode_manifest r in
  Wire.expect_end r ~what:"manifest";
  m

let save_rescue ~path ~fingerprint e =
  save path
    (Codec.frame ~kind:Codec.Rescue_frame ~fingerprint (fun b ->
         Codec.encode_rescue b e))

let load_rescue ~path ~fingerprint =
  let r = load ~fingerprint ~kind:Codec.Rescue_frame path in
  let e = Codec.decode_rescue r in
  Wire.expect_end r ~what:"rescue record";
  e
