(** Versioned, checksummed frames and payload codecs for everything a HALO
    run is made of.

    {2 Frame layout}

    Every artifact on disk is one frame:

    {v
    offset  size  field
    0       4     magic "HALO"
    4       1     format version (currently 3)
    5       1     kind tag (which payload codec)
    6       8     fingerprint (LE): Params.fingerprint for lattice
                  artifacts, the manifest fingerprint for journal entries,
                  0 when the payload is self-describing
    14      8     payload length (LE)
    22      n     payload
    22+n    4     CRC-32 of bytes [0, 22+n)
    v}

    {!unframe} validates magic, version, kind, fingerprint, length and CRC
    — in that order, never reading a payload field first — and raises
    {!Halo_error.Persist_error} with the file path, byte offset and
    expected-vs-got values on any mismatch.  A frame written under different
    parameters, or by a future format version, is rejected loudly; it is
    never decoded wrongly.

    Decoders additionally validate payload structure against the parameter
    set (limb lengths, residue ranges, level bounds), so even a frame whose
    checksum collides cannot produce an out-of-range polynomial. *)

module Params = Halo_ckks.Params
module Rns_poly = Halo_ckks.Rns_poly
module Eval = Halo_ckks.Eval
module Keys = Halo_ckks.Keys
module Ref_backend = Halo_ckks.Ref_backend

type kind =
  | Rns_poly_frame
  | Ref_ct_frame
  | Lattice_ct_frame
  | Keys_frame
  | Program_frame
  | Manifest_frame
  | Entry_frame
  | Serve_manifest_frame
      (** serving-layer configuration + program registry ([Halo_serve]) *)
  | Serve_request_frame  (** one accepted serving request ([Halo_serve]) *)
  | Serve_entry_frame  (** one completed serving batch ([Halo_serve]) *)
  | Serve_plan_frame
      (** one admission-TTL planning record: the requests evaluated for
          expiry before a wave executed ([Halo_serve]) *)
  | Serve_quarantine_frame
      (** quarantine snapshot: tenants banned by the supervisor, with the
          culprit request ids ([Halo_serve]) *)
  | Serve_drain_frame
      (** graceful-drain handoff manifest written after the last in-flight
          batch was journaled ([Halo_serve]) *)
  | Serve_chaos_frame
      (** chaos-soak driver state: how many submission rounds a trial has
          durably injected ([halo_cli chaos]) *)
  | Rescue_frame
      (** one rescue-bootstrap decision journaled by the runtime noise
          monitor ([rescue-<seq>.ckpt]) *)
  | Tune_manifest_frame
      (** one autotuned strategy plan emitted by [halo_cli tune], stamped
          with the source program + bindings fingerprint ([Halo_tune.Plan]) *)

val format_version : int

val frame : kind:kind -> fingerprint:int64 -> (Buffer.t -> unit) -> string
(** Serialize a payload writer into a complete frame. *)

val unframe : ?path:string -> kind:kind -> fingerprint:int64 option -> string -> Wire.reader
(** Validate a frame and return a reader over its payload.  When
    [fingerprint] is [Some fp] the frame's stamp must match exactly;
    [None] accepts any stamp (the caller reads it via {!fingerprint_of}). *)

val fingerprint_of : ?path:string -> string -> int64
(** The fingerprint stamp of a frame (validates magic/version/CRC first). *)

(** {2 Payload codecs} *)

val encode_rns : Buffer.t -> Rns_poly.t -> unit
val decode_rns : Params.t -> Wire.reader -> Rns_poly.t
(** Domain-tag aware: an [Eval]-domain polynomial round-trips NTT-resident,
    with no forced inverse transform.  Validates level bounds, limb lengths
    and residue ranges against the parameter set. *)

val encode_ref_ct : Buffer.t -> Ref_backend.ct -> unit

val decode_ref_ct : slots:int -> max_level:int -> Wire.reader -> Ref_backend.ct
(** Ciphertext frames carry the runtime noise estimate since format
    version 5; version-3/4 frames decode with the estimate at zero. *)

val encode_lattice_ct : Buffer.t -> Eval.ct -> unit
val decode_lattice_ct : Params.t -> Wire.reader -> Eval.ct

val encode_keys : Buffer.t -> Keys.t -> unit
val decode_keys : Params.t -> Wire.reader -> Keys.t

val encode_program : Buffer.t -> Halo.Ir.program -> unit
val decode_program : Wire.reader -> Halo.Ir.program

val encode_rng : Buffer.t -> Random.State.t -> unit
val decode_rng : Wire.reader -> Random.State.t
(** The RNG state is an opaque [Marshal] blob inside the checksummed frame;
    it is only unmarshalled after the CRC has validated, and replays
    bit-identically on the same OCaml version. *)

val encode_stats : Buffer.t -> Halo_runtime.Stats.t -> unit
val decode_stats : Wire.reader -> Halo_runtime.Stats.t

(** {2 Run manifest} *)

(** Reference-backend construction knobs, stored so a resumed run rebuilds
    the exact same backend. *)
type backend_cfg = {
  slots : int;
  max_level : int;
  scale_bits : int;
  seed : int;
  enc_noise : float;
  mult_noise : float;
  boot_noise : float;
  rescale_noise : float;
}

(** Everything [halo_cli resume] needs: the compiled program, its dynamic
    bindings, the concrete input vectors, the backend configuration and the
    journaling cadence. *)
type manifest = {
  prog : Halo.Ir.program;  (** compiled (post-strategy) program *)
  strategy : string;  (** for display only; [prog] is already compiled *)
  bindings : (string * int) list;
  inputs : (string * float array) list;
  backend : backend_cfg;
  every_n : int;  (** checkpoint cadence, in loop iterations *)
  retain : int;  (** journal entries retained per loop *)
  guard_every : int;
      (** in-loop guard cadence; [0] disables the guard.  Stored so a
          resumed run applies the same cadence and reproduces the same
          [guard_trips] counter. *)
  guard_margin : float;
      (** decrypt-time guard margin the run was started with, so a resumed
          run checks against the same calibration *)
  rescue : bool;  (** runtime noise monitor enabled *)
  rescue_margin : float;  (** headroom ratio below which a rescue fires *)
  max_rescues : int;  (** rescue budget for the run *)
}

val encode_manifest : Buffer.t -> manifest -> unit
val decode_manifest : Wire.reader -> manifest

val manifest_fingerprint : manifest -> int64
(** Stamp carried by every journal entry, binding entries to the manifest
    they were written under. *)

(** {2 Checkpoint journal entries} *)

type 'ct carried = Plain of float array | Cipher of 'ct

type 'ct entry = {
  seq : int;  (** monotone append sequence, continues across resumes *)
  loop_var : int;  (** SSA result variable of the [For] being checkpointed *)
  iter : int;  (** 0-based index of the completed iteration *)
  carried : 'ct carried list;  (** loop-carried values after [iter] *)
  rng : Random.State.t;  (** backend RNG right after [iter] *)
  stats : Halo_runtime.Stats.t;  (** counters right after [iter] *)
}

val encode_entry :
  enc_ct:(Buffer.t -> 'ct -> unit) -> Buffer.t -> 'ct entry -> unit

val decode_entry : dec_ct:(Wire.reader -> 'ct) -> Wire.reader -> 'ct entry

(** {2 Rescue records}

    One frame per rescue bootstrap fired by the runtime noise monitor,
    written as [rescue-<seq>.ckpt] next to the checkpoint journal (the
    journal scanner ignores them: they are audit artifacts, keyed and
    rewritten idempotently by sequence number, so an interrupted-and-resumed
    run produces byte-identical rescue files to an uninterrupted one). *)

val encode_rescue : Buffer.t -> Halo_runtime.Noise_monitor.rescue_event -> unit
val decode_rescue : Wire.reader -> Halo_runtime.Noise_monitor.rescue_event
