(** Primitive binary fields: fixed-width little-endian writers over
    [Buffer.t] and a bounds-checked reader that raises
    {!Halo_error.Persist_error} — with path and byte offset — on any short
    read or absurd length, so a truncated or corrupt artifact can never
    allocate garbage or decode silently wrong. *)

(** {2 Writers} *)

val u8 : Buffer.t -> int -> unit
val i64 : Buffer.t -> int -> unit
(** OCaml [int], sign-extended to 8 bytes. *)

val f64 : Buffer.t -> float -> unit
(** IEEE-754 bits; round-trips NaNs and signed zeros bit-exactly. *)

val str : Buffer.t -> string -> unit
(** Length-prefixed bytes. *)

val int_array : Buffer.t -> int array -> unit
val float_array : Buffer.t -> float array -> unit
val list : Buffer.t -> (Buffer.t -> 'a -> unit) -> 'a list -> unit

(** {2 Reader} *)

type reader = {
  src : string;
  path : string option;  (** carried into every error *)
  base : int;  (** offset of [src]'s first byte within the file *)
  version : int;
      (** container format version the payload was written under; codecs
          consult it to skip fields absent from older formats.  Readers
          built without an explicit version default to newest. *)
  mutable pos : int;
}

val reader : ?path:string -> ?base:int -> ?version:int -> string -> reader

val fail :
  reader -> ?expected:string -> ?got:string -> ('a, unit, string, 'b) format4 -> 'a
(** Raise {!Halo_error.Persist_error} at the reader's current offset. *)

val ru8 : reader -> int
val ri64 : reader -> int
val rf64 : reader -> float
val rstr : reader -> string
val rint_array : reader -> int array
val rfloat_array : reader -> float array
val rlist : reader -> (reader -> 'a) -> 'a list
val expect_end : reader -> what:string -> unit
(** Fail unless every byte has been consumed. *)
