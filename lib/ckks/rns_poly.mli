(** Polynomials of [Z_Q[X]/(X^n + 1)] in residue-number-system form, over the
    ciphertext modulus chain of a {!Params.t}.

    A polynomial at level [l] carries [l] residue vectors, one per prime
    [moduli.(0) .. moduli.(l-1)], each tagged with the {!domain} it lives
    in: [Coeff] (coefficients) or [Eval] (the NTT evaluation domain).  The
    kernel-layer invariant is that homomorphic pipelines stay NTT-resident:
    [mul] and the [Eval]-domain [automorphism] never leave the evaluation
    domain, additions harmonize mixed operands towards [Eval], and inverse
    transforms happen only at the [rescale_last] / {!centered_coeffs}
    boundaries.  Both representations are exact, so a value's coefficients
    are bit-identical whichever path produced them.

    The level management operations implement exactly the paper's
    abstraction (Figure 1): [rescale] and [modswitch] drop the last residue
    polynomial, the former dividing the value by the dropped prime.
    Per-limb loops are fanned out over {!Domain_pool}. *)

type domain = Coeff | Eval

type t = private { level : int; domain : domain; res : int array array }

val level : t -> int
val domain : t -> domain

val zero : ?domain:domain -> Params.t -> level:int -> t
(** The zero polynomial ([domain] defaults to [Coeff]; zero is zero in
    either representation). *)

val of_centered_coeffs : Params.t -> level:int -> int array -> t
(** Embed a small-coefficient integer polynomial (coefficients are reduced
    into each modulus).  Result is in the [Coeff] domain. *)

val of_residues : ?domain:domain -> int array array -> t
(** Takes ownership of the given residue vectors ([domain] defaults to
    [Coeff]). *)

val to_eval : Params.t -> t -> t
(** Forward-NTT every limb (physical identity when already [Eval]). *)

val to_coeff : Params.t -> t -> t
(** Inverse-NTT every limb (physical identity when already [Coeff]). *)

val centered_coeffs : Params.t -> t -> int array
(** Recover centered integer coefficients from the base residue (converting
    only that limb when the polynomial is NTT-resident).  Correct whenever
    the true centered coefficients are below [moduli.(0) / 2] in magnitude,
    which encryption parameters guarantee for decrypted plaintexts (see
    DESIGN.md). *)

val add : Params.t -> t -> t -> t
val sub : Params.t -> t -> t -> t
(** Pointwise in either domain; mixed-domain operands are lifted to [Eval].
    Operands must share a level. *)

val neg : Params.t -> t -> t

val mul : Params.t -> t -> t -> t
(** Negacyclic product: lifts both operands to [Eval] and multiplies
    pointwise, returning an [Eval]-domain result so chained operations pay
    no inverse transform.  Operands must share a level. *)

val automorphism : Params.t -> k:int -> t -> t
(** [X -> X^k] for odd [k], the Galois action implementing slot rotation.
    On an [Eval]-domain operand this is a cached slot permutation and stays
    NTT-resident; on a [Coeff]-domain operand it is the signed coefficient
    shuffle.  [k] is normalized modulo [2n] first. *)

val rescale_last : Params.t -> t -> t
(** Exact RNS rescale: drops the last residue and divides by its prime,
    using the precomputed {!Params.rescale_inv} constants.  Converts to the
    [Coeff] domain (this is the pipeline's coefficient boundary).  Requires
    level >= 2. *)

val drop_last : t -> t
(** Modswitch: drop the last residue without scaling (valid in either
    domain).  Requires level >= 2. *)

val to_level : Params.t -> level:int -> t -> t
(** Drop residues down to [level] (a single [Array.sub]). *)
