let bootstrap ?(noise_sigma = 1e-5) (keys : Keys.t) ct ~target =
  let params = keys.params in
  if target < 1 || target > params.max_level then
    invalid_arg "Bootstrap_oracle.bootstrap: target out of range";
  let values = Eval.decrypt keys ct in
  let noisy =
    if noise_sigma <= 0.0 then values
    else begin
      let gauss () =
        let u1 = Random.State.float keys.rng 1.0 +. 1e-12 in
        let u2 = Random.State.float keys.rng 1.0 in
        sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2) *. noise_sigma
      in
      Array.map (fun v -> v +. gauss ()) values
    end
  in
  let r = Eval.encrypt_sym keys ~level:target noisy in
  (* The oracle's output error is the bootstrap unit, not a fresh
     encryption's — keep the runtime estimate aligned with the static
     model's Bootstrap rule. *)
  Eval.set_noise_est r Halo_cost.Noise_units.(default.bootstrap);
  r
