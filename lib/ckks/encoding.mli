(** CKKS encoding: the canonical embedding between complex slot vectors and
    integer polynomials.

    A degree-[n] real polynomial is evaluated at the [n/2] primitive [2n]-th
    roots of unity [zeta^{5^j}] (the rotation group ordering), giving [n/2]
    complex "slots".  Rotating slots by [r] then corresponds to the Galois
    automorphism [X -> X^{5^r}], which is how {!Eval.rotate} is implemented.

    Values are scaled by [scale] and rounded to integers before being reduced
    into RNS form. *)

val encode :
  Params.t -> level:int -> scale:float -> Complex.t array -> Rns_poly.t
(** Encode at most [slots] values (shorter inputs are zero-padded). *)

val decode : Params.t -> scale:float -> Rns_poly.t -> Complex.t array
(** Decode to exactly [slots] complex values. *)

val encode_real :
  Params.t -> level:int -> scale:float -> float array -> Rns_poly.t

val encode_centered : Params.t -> scale:float -> Complex.t array -> int array
(** The canonical-embedding rounding only: centered integer coefficients
    before any RNS reduction, so callers needing the same plaintext at
    several moduli (e.g. the extended chain of a lazy key switch) pay the
    FFT once. *)

val encode_real_centered : Params.t -> scale:float -> float array -> int array

val decode_real : Params.t -> scale:float -> Rns_poly.t -> float array

val rot_group : Params.t -> int array
(** [5^j mod 2n] for [j < slots]; exposed for tests. *)
