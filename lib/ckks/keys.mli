(** Key material: ternary secret, public encryption key, and BV-style
    switching keys (relinearization and Galois/rotation keys) with per-prime
    digit decomposition and one special prime.

    Switching keys live modulo [Q * P] where [P] is the special prime.  The
    per-prime decomposition keeps every digit's coefficients below its prime,
    so no multi-precision base extension is required, and dividing the
    switched ciphertext by [P] (an exact RNS rescale) keeps the added noise
    at the scale of a fresh encryption error.

    {b Memory-bounded key cache.}  Rotation keys are generated on first use
    and kept in an LRU cache bounded by a byte budget ([HALO_KEY_BUDGET] or
    {!set_key_budget}; 0 = unbounded).  Each key's exact heap footprint is
    measured at generation; when the resident set exceeds the budget, the
    least-recently-used keys are dropped (the relinearization and public
    keys are exempt — they are few and always hot).  Every key is generated
    from its own RNG stream seeded only by the secret and the Galois
    element, so an evicted key regenerates {e bit-identically} on re-miss:
    eviction can never change a ciphertext bit, only timing.  All lookup,
    generation, accounting and eviction run under [rotations_mutex], so the
    cache is safe under [Domain_pool] concurrency. *)

type secret = private { coeffs : int array (* ternary *) }

type switch_key
(** One key per RNS digit, stored in the NTT domain over the extended chain
    (all ciphertext moduli followed by the special prime). *)

type cached_key
(** A resident rotation key plus its measured byte footprint and LRU tick. *)

type cache_stats
(** Mutable cache counters (read them through the [cache_stats] snapshot
    function below). *)

type cache_snapshot = {
  snap_hits : int;  (** lookups served from the resident set *)
  snap_misses : int;  (** first-ever generations *)
  snap_evictions : int;  (** keys dropped under budget pressure *)
  snap_regenerations : int;  (** re-misses regenerated after eviction *)
  snap_digit_hits : int;  (** cross-op digit decompositions reused *)
  snap_resident_bytes : int;  (** current rotation-key footprint *)
  snap_budget : int;  (** configured budget in bytes; 0 = unbounded *)
}

type t = private {
  params : Params.t;
  secret : secret;
  pk0 : Rns_poly.t;
  pk1 : Rns_poly.t;
  relin : switch_key;
  rotations : (int, cached_key) Hashtbl.t;  (** keyed by Galois element *)
  generated : (int, unit) Hashtbl.t;
      (** Galois elements generated at least once (regeneration counting) *)
  rotations_mutex : Mutex.t;
      (** serializes rotation-key generation, LRU accounting and eviction
          across domains *)
  mutable rng : Random.State.t;
  mutable key_budget : int;  (** bytes; 0 = unbounded *)
  mutable clock : int;  (** LRU clock *)
  mutable resident_bytes : int;
  cache : cache_stats;
  seed_base : int;  (** seeds the per-key generation streams *)
}

val keygen : ?seed:int -> Params.t -> t

val galois_element : Params.t -> offset:int -> int
(** The Galois element [5^offset mod 2n] implementing a left rotation by
    [offset] slots (negative offsets rotate right). *)

val rotation_key : t -> offset:int -> switch_key
(** Fetches (generating and caching on first use, regenerating
    deterministically after eviction) the switching key for the rotation by
    [offset].  The returned key stays valid even if the cache evicts it
    later: eviction only drops the cache's reference. *)

val conjugation_key : t -> switch_key
(** Switching key for the conjugation automorphism [X -> X^{2n-1}], needed
    by the real bootstrapping pipeline's CoeffToSlot. *)

val key_switch : t -> switch_key -> Rns_poly.t -> Rns_poly.t * Rns_poly.t
(** [key_switch keys k d] returns [(u0, u1)] such that
    [u0 + u1 * s ~ d * s'] where [s'] is the key [k] was generated for.
    Equivalent to [apply keys k (decompose keys d)]. *)

(** {2 Memory budget and cache statistics} *)

val parse_budget : string -> int
(** Parses a byte budget with optional [K]/[M]/[G] suffix (powers of 1024).
    The empty string means unbounded (0).  Raises [Invalid_argument] on
    malformed input. *)

val key_bytes : switch_key -> int
(** Exact heap footprint of one switching key in bytes (every reachable
    word, including the Shoup companions), as charged against the budget. *)

val set_key_budget : t -> int -> unit
(** Sets the budget in bytes (0 = unbounded) and evicts immediately if the
    resident set no longer fits.  Overrides [HALO_KEY_BUDGET]. *)

val cache_stats : t -> cache_snapshot
(** Consistent snapshot of the cache counters (taken under the mutex). *)

val reset_cache_stats : t -> unit
(** Zeroes the counters (not the resident-set accounting). *)

val record_digit_hit : t -> unit
(** Counts one cross-op digit-decomposition reuse (see [Eval]). *)

(** {2 Hoisted key switching}

    [key_switch] split into its two halves so the expensive half can be
    shared.  [decompose] performs the mod-up/digit decomposition (the
    per-prime centered digits, lifted to the NTT domain over the extended
    chain) once; [apply] is the cheap per-key inner product.  A group of
    rotations of one ciphertext decomposes [c1] once and calls
    [apply_rotated] per offset — every result is bit-identical to the
    corresponding single-rotation key switch because the whole path is
    exact modular integer arithmetic. *)

type decomposed
(** Reusable mod-up product: NTT-domain digits over the extended chain. *)

val decompose : t -> Rns_poly.t -> decomposed

val apply : t -> switch_key -> decomposed -> Rns_poly.t * Rns_poly.t
(** The per-key half of [key_switch]: digit/key inner product, inverse
    transforms, exact division by the special prime. *)

val apply_rotated : t -> switch_key -> k:int -> decomposed -> Rns_poly.t * Rns_poly.t
(** [apply_rotated keys sk ~k dec] key-switches the Galois automorphism
    [X -> X^k] of the decomposed polynomial, reading the shared digits
    through the evaluation-domain slot permutation of [k] (fused into the
    inner product; the digits are not copied).  [sk] must be the switching
    key for that automorphism. *)

(** {2 Lazy key switching}

    An extended-basis MAC accumulator for a whole rotate-and-sum reduction:
    each {!mac_accumulate} adds one rotation's digit/key inner product
    (optionally scaled by a plaintext factor) into running sums modulo
    [Q * P], still in the NTT domain; {!mac_finish} pays the inverse
    transforms and the exact division by [P] {e once} for the whole group
    instead of once per member.  Modular addition is exact and associative,
    so the finished pair is bit-identical whether the digits were shared
    across members (lazy) or recomputed per member (eager). *)

type mac

val mac_create : t -> decomposed -> mac
(** A zeroed accumulator shaped for the given decomposition's level. *)

val mac_accumulate :
  t -> ?k:int -> ?coeff:int array array -> switch_key -> decomposed -> mac -> unit
(** Adds one member's inner product into the accumulator.  [?k] reads the
    digits through the Galois automorphism's slot permutation (as
    [apply_rotated]); [?coeff] multiplies the member by a plaintext factor
    given as NTT-domain residues per extended-chain position (see
    {!ext_of_centered}).  The decomposition's level must match the
    accumulator's. *)

val mac_finish : t -> mac -> Rns_poly.t * Rns_poly.t
(** Inverse transforms plus exact division by [P], once for the whole
    group.  Consumes the accumulator (the transforms run in place). *)

val ext_of_centered : t -> level:int -> int array -> int array array
(** NTT-domain images of a centered integer polynomial at every extended
    chain position ([level] ciphertext moduli then the special prime),
    shaped for [mac_accumulate]'s [?coeff].  The first [level] rows are
    exactly the evaluation-domain mod-Q residues of the polynomial. *)

val relin_key : t -> switch_key

val secret_poly : t -> level:int -> Rns_poly.t
(** The secret embedded at a ciphertext level, for decryption. *)

(** {2 Codec hooks}

    Raw accessors and constructors used by [Halo_persist] to round-trip key
    material through the durable artifact store.  [switch_key_of_raw] and
    [of_parts] validate shapes against the parameter set and raise
    [Invalid_argument] on any mismatch. *)

val rng_state : t -> Random.State.t
(** Copy of the key set's RNG (consumed by encryption), so a restored key
    set continues the identical stream.  Rotation-key generation draws from
    per-key derived streams instead, so cache state never perturbs it. *)

val set_rng_state : t -> Random.State.t -> unit

val switch_key_raw : switch_key -> int array array array * int array array array
(** [(k0, k1)] with [k0.(digit).(chain_pos)] an NTT-domain residue vector. *)

val switch_key_of_raw :
  Params.t -> k0:int array array array -> k1:int array array array -> switch_key

val rotation_entries : t -> (int * switch_key) list
(** Cached rotation keys, keyed by Galois element, in sorted order.  A key
    evicted before the snapshot is simply absent; it regenerates
    bit-identically on demand after restore. *)

val of_parts :
  Params.t ->
  secret:int array ->
  pk0:Rns_poly.t ->
  pk1:Rns_poly.t ->
  relin:switch_key ->
  rotations:(int * switch_key) list ->
  rng:Random.State.t ->
  t
(** Restored entries are marked as previously generated and the resident
    set is brought under the (environment-configured) budget immediately;
    deterministic regeneration keeps any eviction here bit-invisible. *)
