(** Key material: ternary secret, public encryption key, and BV-style
    switching keys (relinearization and Galois/rotation keys) with per-prime
    digit decomposition and one special prime.

    Switching keys live modulo [Q * P] where [P] is the special prime.  The
    per-prime decomposition keeps every digit's coefficients below its prime,
    so no multi-precision base extension is required, and dividing the
    switched ciphertext by [P] (an exact RNS rescale) keeps the added noise
    at the scale of a fresh encryption error. *)

type secret = private { coeffs : int array (* ternary *) }

type switch_key
(** One key per RNS digit, stored in the NTT domain over the extended chain
    (all ciphertext moduli followed by the special prime). *)

type t = private {
  params : Params.t;
  secret : secret;
  pk0 : Rns_poly.t;
  pk1 : Rns_poly.t;
  relin : switch_key;
  rotations : (int, switch_key) Hashtbl.t;  (** keyed by Galois element *)
  rotations_mutex : Mutex.t;
      (** serializes on-demand rotation-key generation across domains *)
  mutable rng : Random.State.t;
}

val keygen : ?seed:int -> Params.t -> t

val galois_element : Params.t -> offset:int -> int
(** The Galois element [5^offset mod 2n] implementing a left rotation by
    [offset] slots (negative offsets rotate right). *)

val rotation_key : t -> offset:int -> switch_key
(** Fetches (generating and caching on first use) the switching key for the
    rotation by [offset]. *)

val conjugation_key : t -> switch_key
(** Switching key for the conjugation automorphism [X -> X^{2n-1}], needed
    by the real bootstrapping pipeline's CoeffToSlot. *)

val key_switch : t -> switch_key -> Rns_poly.t -> Rns_poly.t * Rns_poly.t
(** [key_switch keys k d] returns [(u0, u1)] such that
    [u0 + u1 * s ~ d * s'] where [s'] is the key [k] was generated for.
    Equivalent to [apply keys k (decompose keys d)]. *)

(** {2 Hoisted key switching}

    [key_switch] split into its two halves so the expensive half can be
    shared.  [decompose] performs the mod-up/digit decomposition (the
    per-prime centered digits, lifted to the NTT domain over the extended
    chain) once; [apply] is the cheap per-key inner product.  A group of
    rotations of one ciphertext decomposes [c1] once and calls
    [apply_rotated] per offset — every result is bit-identical to the
    corresponding single-rotation key switch because the whole path is
    exact modular integer arithmetic. *)

type decomposed
(** Reusable mod-up product: NTT-domain digits over the extended chain. *)

val decompose : t -> Rns_poly.t -> decomposed

val apply : t -> switch_key -> decomposed -> Rns_poly.t * Rns_poly.t
(** The per-key half of [key_switch]: digit/key inner product, inverse
    transforms, exact division by the special prime. *)

val apply_rotated : t -> switch_key -> k:int -> decomposed -> Rns_poly.t * Rns_poly.t
(** [apply_rotated keys sk ~k dec] key-switches the Galois automorphism
    [X -> X^k] of the decomposed polynomial, reading the shared digits
    through the evaluation-domain slot permutation of [k] (fused into the
    inner product; the digits are not copied).  [sk] must be the switching
    key for that automorphism. *)

val relin_key : t -> switch_key

val secret_poly : t -> level:int -> Rns_poly.t
(** The secret embedded at a ciphertext level, for decryption. *)

(** {2 Codec hooks}

    Raw accessors and constructors used by [Halo_persist] to round-trip key
    material through the durable artifact store.  [switch_key_of_raw] and
    [of_parts] validate shapes against the parameter set and raise
    [Invalid_argument] on any mismatch. *)

val rng_state : t -> Random.State.t
(** Copy of the key set's RNG (consumed when rotation keys are generated on
    demand), so a restored key set continues the identical stream. *)

val set_rng_state : t -> Random.State.t -> unit

val switch_key_raw : switch_key -> int array array array * int array array array
(** [(k0, k1)] with [k0.(digit).(chain_pos)] an NTT-domain residue vector. *)

val switch_key_of_raw :
  Params.t -> k0:int array array array -> k1:int array array array -> switch_key

val rotation_entries : t -> (int * switch_key) list
(** Cached rotation keys, keyed by Galois element, in sorted order. *)

val of_parts :
  Params.t ->
  secret:int array ->
  pk0:Rns_poly.t ->
  pk1:Rns_poly.t ->
  relin:switch_key ->
  rotations:(int * switch_key) list ->
  rng:Random.State.t ->
  t
