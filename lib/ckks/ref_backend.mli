(** Reference CKKS backend: carries the decoded slot values in the clear
    while enforcing the same level/scale discipline as the lattice backend
    and injecting calibrated noise.

    The HALO compiler's behaviour depends only on levels, scales, encryption
    status and operation counts; this backend reproduces those exactly while
    scaling to the paper's workloads (4096 slots, 40-iteration training
    loops), which the real lattice backend cannot reach without the authors'
    GPU library.  The lattice backend ({!Eval}) is used by the test suite to
    validate that programs run unchanged on genuine RLWE ciphertexts.

    Level/scale discipline violations raise {!Halo_error.Backend_error}
    with operation and level context. *)

type ct = private {
  data : float array;
  ct_level : int;
  scale_bits : float;  (** log2 of the ciphertext scale *)
  noise_est : float;
      (** interval-style upper bound on the relative error, updated by
          every op with {!Halo_cost.Noise_units.default} so it is directly
          comparable to the static {!Halo.Noise_budget} bound *)
}

type state

val create :
  ?seed:int ->
  ?enc_noise:float ->
  ?mult_noise:float ->
  ?boot_noise:float ->
  ?rescale_noise:float ->
  slots:int ->
  max_level:int ->
  scale_bits:int ->
  unit ->
  state
(** Noise magnitudes are standard deviations in slot-value units:
    [enc_noise] at encryption (default [1e-7]), [mult_noise] relative error
    per multiplication (default [1e-8]), [boot_noise] per bootstrap
    (default [1e-5], matching the oracle's default), [rescale_noise]
    rounding error per rescale (default [2^-25]).  With all four set to
    [0.] the backend is exactly deterministic regardless of RNG position,
    which the resilience tests use for bit-identical replay checks. *)

val name : string
val slots : state -> int
val max_level : state -> int
val level : state -> ct -> int

val rng_state : state -> Random.State.t
(** A copy of the backend's RNG state.  Checkpointing snapshots this at each
    loop-iteration head so a resumed run replays the noise stream
    bit-identically. *)

val set_rng_state : state -> Random.State.t -> unit
(** Reinstall a snapshot taken by {!rng_state} (the argument is copied). *)

val make_ct :
  ?noise_est:float -> data:float array -> level:int -> scale_bits:float ->
  unit -> ct
(** Reassemble a ciphertext from its serialized parts (codec hook for
    [Halo_persist]; takes ownership of [data]).  [noise_est] defaults to
    [0.0] for frames written before the estimator existed. *)

val noise_estimate : state -> ct -> float
(** The ciphertext's running noise upper bound (never consumes RNG). *)

val inflate_noise : state -> ct -> by:float -> ct
(** Add [by] to the ciphertext's noise bound without touching its payload —
    the hook fault injection uses to make silent corruption visible to the
    runtime monitor. *)

val encrypt : state -> level:int -> float array -> ct
val decrypt : state -> ct -> float array

val addcc : state -> ct -> ct -> ct
val subcc : state -> ct -> ct -> ct
val addcp : state -> ct -> float array -> ct
val multcc : state -> ct -> ct -> ct
val multcp : state -> ct -> float array -> ct
val rotate : state -> ct -> offset:int -> ct

val rotate_many : state -> ct -> offsets:int list -> ct list
(** Grouped rotation of one ciphertext; on this backend exactly the
    sequence of single {!rotate} calls (there is no key-switch work to
    share, and cleartext rotation consumes no RNG). *)

val rot_sum : state -> ct -> terms:(int * float array option) list -> ct
(** Fused rotate-and-sum; on this backend exactly the unfused per-term
    sequence — rotations, then each member's {!multcp} + {!rescale} in
    term order, then the add chain — so the noise-stream draws match the
    unfused program and fused vs. unfused runs are bit-identical. *)

val rescale : state -> ct -> ct
val modswitch : state -> ct -> down:int -> ct
val bootstrap : state -> ct -> target:int -> ct
val negate : state -> ct -> ct
