type ct = { c0 : Rns_poly.t; c1 : Rns_poly.t; scale : float }

let level ct = Rns_poly.level ct.c0
let scale ct = ct.scale
let of_parts ~c0 ~c1 ~scale = { c0; c1; scale }

let pad_slots (params : Params.t) values =
  if Array.length values = params.slots then values
  else begin
    let out = Array.make params.slots 0.0 in
    Array.blit values 0 out 0 (min (Array.length values) params.slots);
    out
  end

let encrypt_sym (keys : Keys.t) ~level values =
  let params = keys.params in
  let values = pad_slots params values in
  let m = Encoding.encode_real params ~level ~scale:params.scale values in
  let a =
    Rns_poly.of_residues
      (Sampler.uniform_residues keys.rng ~n:params.n
         ~moduli:(Array.sub params.moduli 0 level))
  in
  let e =
    Rns_poly.of_centered_coeffs params ~level
      (Sampler.gaussian keys.rng ~n:params.n ~sigma:params.sigma)
  in
  let s = Keys.secret_poly keys ~level in
  let c0 =
    Rns_poly.add params (Rns_poly.add params (Rns_poly.neg params (Rns_poly.mul params a s)) m) e
  in
  { c0; c1 = a; scale = params.scale }

let encrypt (keys : Keys.t) ~level values =
  let params = keys.params in
  let values = pad_slots params values in
  let m = Encoding.encode_real params ~level ~scale:params.scale values in
  (* v multiplies both public-key halves: lift it to the NTT domain once. *)
  let v =
    Rns_poly.to_eval params
      (Rns_poly.of_centered_coeffs params ~level (Sampler.ternary keys.rng ~n:params.n))
  in
  let e0 =
    Rns_poly.of_centered_coeffs params ~level
      (Sampler.gaussian keys.rng ~n:params.n ~sigma:params.sigma)
  in
  let e1 =
    Rns_poly.of_centered_coeffs params ~level
      (Sampler.gaussian keys.rng ~n:params.n ~sigma:params.sigma)
  in
  let pk0 = Rns_poly.to_level params ~level keys.pk0 in
  let pk1 = Rns_poly.to_level params ~level keys.pk1 in
  let c0 =
    Rns_poly.add params (Rns_poly.add params (Rns_poly.mul params v pk0) m) e0
  in
  let c1 = Rns_poly.add params (Rns_poly.mul params v pk1) e1 in
  { c0; c1; scale = params.scale }

let decrypt_poly (keys : Keys.t) ct =
  let params = keys.params in
  let s = Keys.secret_poly keys ~level:(level ct) in
  Rns_poly.add params ct.c0 (Rns_poly.mul params ct.c1 s)

let decrypt_complex (keys : Keys.t) ct =
  Encoding.decode keys.params ~scale:ct.scale (decrypt_poly keys ct)

let decrypt (keys : Keys.t) ct =
  Encoding.decode_real keys.params ~scale:ct.scale (decrypt_poly keys ct)

let check_levels name a b =
  if level a <> level b then
    invalid_arg (Printf.sprintf "Eval.%s: level mismatch (%d vs %d)" name (level a) (level b))

let check_scales name a b =
  let rel = Float.abs (a.scale -. b.scale) /. Float.max a.scale b.scale in
  if rel > 1e-2 then
    invalid_arg
      (Printf.sprintf "Eval.%s: scale mismatch (%g vs %g)" name a.scale b.scale)

let addcc (keys : Keys.t) a b =
  check_levels "addcc" a b;
  check_scales "addcc" a b;
  let p = keys.params in
  { c0 = Rns_poly.add p a.c0 b.c0; c1 = Rns_poly.add p a.c1 b.c1; scale = a.scale }

let subcc (keys : Keys.t) a b =
  check_levels "subcc" a b;
  check_scales "subcc" a b;
  let p = keys.params in
  { c0 = Rns_poly.sub p a.c0 b.c0; c1 = Rns_poly.sub p a.c1 b.c1; scale = a.scale }

let addcp (keys : Keys.t) a values =
  let params = keys.params in
  let values = pad_slots params values in
  let m = Encoding.encode_real params ~level:(level a) ~scale:a.scale values in
  { a with c0 = Rns_poly.add params a.c0 m }

let multcc (keys : Keys.t) a b =
  check_levels "multcc" a b;
  let p = keys.params in
  (* Each operand polynomial feeds two products: lift all four to the NTT
     domain once so the tensor is pure pointwise arithmetic. *)
  let a0 = Rns_poly.to_eval p a.c0 and a1 = Rns_poly.to_eval p a.c1 in
  let b0 = Rns_poly.to_eval p b.c0 and b1 = Rns_poly.to_eval p b.c1 in
  let d0 = Rns_poly.mul p a0 b0 in
  let d1 = Rns_poly.add p (Rns_poly.mul p a0 b1) (Rns_poly.mul p a1 b0) in
  let d2 = Rns_poly.mul p a1 b1 in
  let u0, u1 = Keys.key_switch keys (Keys.relin_key keys) d2 in
  {
    c0 = Rns_poly.add p d0 u0;
    c1 = Rns_poly.add p d1 u1;
    scale = a.scale *. b.scale;
  }

let multcp (keys : Keys.t) a values =
  let params = keys.params in
  let values = pad_slots params values in
  let m =
    Rns_poly.to_eval params
      (Encoding.encode_real params ~level:(level a) ~scale:params.scale values)
  in
  {
    c0 = Rns_poly.mul params a.c0 m;
    c1 = Rns_poly.mul params a.c1 m;
    scale = a.scale *. params.scale;
  }

let rotate (keys : Keys.t) a ~offset =
  let params = keys.params in
  if offset = 0 then a
  else begin
    let k = Keys.galois_element params ~offset in
    let r0 = Rns_poly.automorphism params ~k a.c0 in
    let r1 = Rns_poly.automorphism params ~k a.c1 in
    let sk = Keys.rotation_key keys ~offset in
    let u0, u1 = Keys.key_switch keys sk r1 in
    { c0 = Rns_poly.add params r0 u0; c1 = u1; scale = a.scale }
  end

(* Hoisted rotations: decompose [c1] once and key-switch every offset
   against the shared digits (the automorphism is applied to the digits as
   a slot permutation fused into the inner product).  The whole key-switch
   path is exact modular integer arithmetic, so each result is bit-identical
   to the corresponding single [rotate]. *)
let rotate_many (keys : Keys.t) a ~offsets =
  let params = keys.params in
  if List.for_all (fun o -> o = 0) offsets then List.map (fun _ -> a) offsets
  else begin
    (* Fetch every switching key up front, in offset order: on-demand key
       generation consumes the key-set RNG, and the hoisted path must
       consume it in exactly the order the equivalent sequence of single
       rotates would. *)
    let sks =
      List.map
        (fun offset ->
          if offset = 0 then None else Some (Keys.rotation_key keys ~offset))
        offsets
    in
    let dec = Keys.decompose keys a.c1 in
    List.map2
      (fun offset sk ->
        match sk with
        | None -> a
        | Some sk ->
          let k = Keys.galois_element params ~offset in
          let r0 = Rns_poly.automorphism params ~k a.c0 in
          let u0, u1 = Keys.apply_rotated keys sk ~k dec in
          { c0 = Rns_poly.add params r0 u0; c1 = u1; scale = a.scale })
      offsets sks
  end

let conjugate (keys : Keys.t) a =
  let params = keys.params in
  let k = (2 * params.n) - 1 in
  let r0 = Rns_poly.automorphism params ~k a.c0 in
  let r1 = Rns_poly.automorphism params ~k a.c1 in
  let u0, u1 = Keys.key_switch keys (Keys.conjugation_key keys) r1 in
  { c0 = Rns_poly.add params r0 u0; c1 = u1; scale = a.scale }

let multcp_complex (keys : Keys.t) a values =
  let params = keys.params in
  let m =
    Rns_poly.to_eval params
      (Encoding.encode params ~level:(level a) ~scale:params.scale values)
  in
  {
    c0 = Rns_poly.mul params a.c0 m;
    c1 = Rns_poly.mul params a.c1 m;
    scale = a.scale *. params.scale;
  }

let rescale (keys : Keys.t) a =
  let params = keys.params in
  let dropped = Params.modulus_at params ~level:(level a) in
  {
    c0 = Rns_poly.rescale_last params a.c0;
    c1 = Rns_poly.rescale_last params a.c1;
    scale = a.scale /. float_of_int dropped;
  }

let modswitch (keys : Keys.t) a ~down =
  if down < 0 then invalid_arg "Eval.modswitch: negative";
  let params = keys.params in
  let target = level a - down in
  {
    a with
    c0 = Rns_poly.to_level params ~level:target a.c0;
    c1 = Rns_poly.to_level params ~level:target a.c1;
  }

let negate (keys : Keys.t) a =
  let p = keys.params in
  { a with c0 = Rns_poly.neg p a.c0; c1 = Rns_poly.neg p a.c1 }

let multcp_exact (keys : Keys.t) a values ~target =
  let params = keys.params in
  let l = level a in
  if l < 2 then invalid_arg "Eval.multcp_exact: level below 2";
  let q = float_of_int (Params.modulus_at params ~level:l) in
  let encode_scale = target *. q /. a.scale in
  let values = pad_slots params values in
  let m =
    Rns_poly.to_eval params
      (Encoding.encode_real params ~level:l ~scale:encode_scale values)
  in
  let product =
    {
      c0 = Rns_poly.mul params a.c0 m;
      c1 = Rns_poly.mul params a.c1 m;
      scale = a.scale *. encode_scale;
    }
  in
  let r = rescale keys product in
  (* Floating bookkeeping can be off by one ulp; pin the target. *)
  { r with scale = target }

let adjust_scale (keys : Keys.t) a ~target =
  multcp_exact keys a (Array.make keys.params.slots 1.0) ~target
