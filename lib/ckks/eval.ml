type ct = {
  c0 : Rns_poly.t;
  c1 : Rns_poly.t;
  scale : float;
  mutable digits : (Rns_poly.t * Keys.decomposed) option;
      (* cross-op digit memo: the mod-up decomposition of [c1], tagged with
         the exact [c1] object it was computed from.  Validity is physical
         identity of that tag with the current [c1] — any functional update
         that replaces [c1] makes a carried memo self-invalidating, while
         updates that keep the same [c1] object (e.g. plaintext adds into
         [c0]) keep it live.  The single-word store is atomic in OCaml, so
         a concurrent race costs at worst one redundant (bit-identical)
         recompute, never a wrong result. *)
  mutable noise_est : float;
      (* interval-style upper bound on the relative error, mirroring the
         static model's per-op rules over Halo_cost.Noise_units so runtime
         and static views are directly comparable.  Pure bookkeeping: no
         RNG, no effect on the polynomials. *)
}

let units = Halo_cost.Noise_units.default

let level ct = Rns_poly.level ct.c0
let scale ct = ct.scale
let mk c0 c1 scale = { c0; c1; scale; digits = None; noise_est = 0.0 }
let of_parts ~c0 ~c1 ~scale = mk c0 c1 scale

let noised n ct =
  ct.noise_est <- n;
  ct

let noise_est ct = ct.noise_est
let set_noise_est ct n = ct.noise_est <- n

(* Functional copy keeps the same [c1] object, so a carried digit memo
   stays valid across the inflation. *)
let inflate_noise ct ~by = { ct with noise_est = ct.noise_est +. by }

let digit_cache_enabled =
  ref
    (match Sys.getenv_opt "HALO_DIGIT_CACHE" with
    | Some ("0" | "off" | "false" | "OFF" | "FALSE") -> false
    | _ -> true)

let set_digit_cache on = digit_cache_enabled := on

(* Fetch or compute the digit decomposition of [a.c1].  Reuse is counted in
   the key-set cache statistics; disabling the cache degrades to a fresh
   decomposition per call with bit-identical results (the decomposition is
   a deterministic function of [c1]). *)
let decompose_cached (keys : Keys.t) a =
  if not !digit_cache_enabled then Keys.decompose keys a.c1
  else
    match a.digits with
    | Some (src, dec) when src == a.c1 ->
      Keys.record_digit_hit keys;
      dec
    | _ ->
      let dec = Keys.decompose keys a.c1 in
      a.digits <- Some (a.c1, dec);
      dec

let pad_slots (params : Params.t) values =
  if Array.length values = params.slots then values
  else begin
    let out = Array.make params.slots 0.0 in
    Array.blit values 0 out 0 (min (Array.length values) params.slots);
    out
  end

let encrypt_sym (keys : Keys.t) ~level values =
  let params = keys.params in
  let values = pad_slots params values in
  let m = Encoding.encode_real params ~level ~scale:params.scale values in
  let a =
    Rns_poly.of_residues
      (Sampler.uniform_residues keys.rng ~n:params.n
         ~moduli:(Array.sub params.moduli 0 level))
  in
  let e =
    Rns_poly.of_centered_coeffs params ~level
      (Sampler.gaussian keys.rng ~n:params.n ~sigma:params.sigma)
  in
  let s = Keys.secret_poly keys ~level in
  let c0 =
    Rns_poly.add params (Rns_poly.add params (Rns_poly.neg params (Rns_poly.mul params a s)) m) e
  in
  noised units.enc (mk c0 a params.scale)

let encrypt (keys : Keys.t) ~level values =
  let params = keys.params in
  let values = pad_slots params values in
  let m = Encoding.encode_real params ~level ~scale:params.scale values in
  (* v multiplies both public-key halves: lift it to the NTT domain once. *)
  let v =
    Rns_poly.to_eval params
      (Rns_poly.of_centered_coeffs params ~level (Sampler.ternary keys.rng ~n:params.n))
  in
  let e0 =
    Rns_poly.of_centered_coeffs params ~level
      (Sampler.gaussian keys.rng ~n:params.n ~sigma:params.sigma)
  in
  let e1 =
    Rns_poly.of_centered_coeffs params ~level
      (Sampler.gaussian keys.rng ~n:params.n ~sigma:params.sigma)
  in
  let pk0 = Rns_poly.to_level params ~level keys.pk0 in
  let pk1 = Rns_poly.to_level params ~level keys.pk1 in
  let c0 =
    Rns_poly.add params (Rns_poly.add params (Rns_poly.mul params v pk0) m) e0
  in
  let c1 = Rns_poly.add params (Rns_poly.mul params v pk1) e1 in
  noised units.enc (mk c0 c1 params.scale)

let decrypt_poly (keys : Keys.t) ct =
  let params = keys.params in
  let s = Keys.secret_poly keys ~level:(level ct) in
  Rns_poly.add params ct.c0 (Rns_poly.mul params ct.c1 s)

let decrypt_complex (keys : Keys.t) ct =
  Encoding.decode keys.params ~scale:ct.scale (decrypt_poly keys ct)

let decrypt (keys : Keys.t) ct =
  Encoding.decode_real keys.params ~scale:ct.scale (decrypt_poly keys ct)

let check_levels name a b =
  if level a <> level b then
    invalid_arg (Printf.sprintf "Eval.%s: level mismatch (%d vs %d)" name (level a) (level b))

let check_scales name a b =
  let rel = Float.abs (a.scale -. b.scale) /. Float.max a.scale b.scale in
  if rel > 1e-2 then
    invalid_arg
      (Printf.sprintf "Eval.%s: scale mismatch (%g vs %g)" name a.scale b.scale)

let addcc (keys : Keys.t) a b =
  check_levels "addcc" a b;
  check_scales "addcc" a b;
  let p = keys.params in
  noised
    (Float.max a.noise_est b.noise_est)
    (mk (Rns_poly.add p a.c0 b.c0) (Rns_poly.add p a.c1 b.c1) a.scale)

let subcc (keys : Keys.t) a b =
  check_levels "subcc" a b;
  check_scales "subcc" a b;
  let p = keys.params in
  noised
    (Float.max a.noise_est b.noise_est)
    (mk (Rns_poly.sub p a.c0 b.c0) (Rns_poly.sub p a.c1 b.c1) a.scale)

let addcp (keys : Keys.t) a values =
  let params = keys.params in
  let values = pad_slots params values in
  let m = Encoding.encode_real params ~level:(level a) ~scale:a.scale values in
  { a with c0 = Rns_poly.add params a.c0 m }

let multcc (keys : Keys.t) a b =
  check_levels "multcc" a b;
  let p = keys.params in
  (* Each operand polynomial feeds two products: lift all four to the NTT
     domain once so the tensor is pure pointwise arithmetic. *)
  let a0 = Rns_poly.to_eval p a.c0 and a1 = Rns_poly.to_eval p a.c1 in
  let b0 = Rns_poly.to_eval p b.c0 and b1 = Rns_poly.to_eval p b.c1 in
  let d0 = Rns_poly.mul p a0 b0 in
  let d1 = Rns_poly.add p (Rns_poly.mul p a0 b1) (Rns_poly.mul p a1 b0) in
  let d2 = Rns_poly.mul p a1 b1 in
  let u0, u1 = Keys.key_switch keys (Keys.relin_key keys) d2 in
  noised
    (a.noise_est +. b.noise_est +. units.keyswitch)
    (mk (Rns_poly.add p d0 u0) (Rns_poly.add p d1 u1) (a.scale *. b.scale))

let multcp (keys : Keys.t) a values =
  let params = keys.params in
  let values = pad_slots params values in
  let m =
    Rns_poly.to_eval params
      (Encoding.encode_real params ~level:(level a) ~scale:params.scale values)
  in
  noised
    (a.noise_est +. units.keyswitch)
    (mk (Rns_poly.mul params a.c0 m) (Rns_poly.mul params a.c1 m)
       (a.scale *. params.scale))

(* Every rotation key-switches against the digit decomposition of the
   unrotated [c1], with the Galois automorphism fused into the inner
   product as a slot permutation ({!Keys.apply_rotated}) — bit-identical to
   key-switching the rotated polynomial because the whole path is exact
   modular integer arithmetic.  Phrasing single rotations this way lets
   consecutive ops on the same ciphertext share one decomposition through
   the cross-op digit memo, not just members of one hoisted group. *)
let rotate (keys : Keys.t) a ~offset =
  let params = keys.params in
  if offset = 0 then a
  else begin
    let k = Keys.galois_element params ~offset in
    let sk = Keys.rotation_key keys ~offset in
    let dec = decompose_cached keys a in
    let r0 = Rns_poly.automorphism params ~k a.c0 in
    let u0, u1 = Keys.apply_rotated keys sk ~k dec in
    noised
      (a.noise_est +. units.keyswitch)
      (mk (Rns_poly.add params r0 u0) u1 a.scale)
  end

(* Hoisted rotations: one decomposition of [c1] (possibly already memoized
   by an earlier op on this ciphertext) shared by every offset. *)
let rotate_many (keys : Keys.t) a ~offsets =
  let params = keys.params in
  if List.for_all (fun o -> o = 0) offsets then List.map (fun _ -> a) offsets
  else begin
    (* Key fetches stay in offset order: generation is deterministic per
       key, but the LRU accounting observes the access order. *)
    let sks =
      List.map
        (fun offset ->
          if offset = 0 then None else Some (Keys.rotation_key keys ~offset))
        offsets
    in
    let dec = decompose_cached keys a in
    List.map2
      (fun offset sk ->
        match sk with
        | None -> a
        | Some sk ->
          let k = Keys.galois_element params ~offset in
          let r0 = Rns_poly.automorphism params ~k a.c0 in
          let u0, u1 = Keys.apply_rotated keys sk ~k dec in
          noised
            (a.noise_est +. units.keyswitch)
            (mk (Rns_poly.add params r0 u0) u1 a.scale))
      offsets sks
  end

let conjugate (keys : Keys.t) a =
  let params = keys.params in
  let k = (2 * params.n) - 1 in
  let sk = Keys.conjugation_key keys in
  let dec = decompose_cached keys a in
  let r0 = Rns_poly.automorphism params ~k a.c0 in
  let u0, u1 = Keys.apply_rotated keys sk ~k dec in
  noised
    (a.noise_est +. units.keyswitch)
    (mk (Rns_poly.add params r0 u0) u1 a.scale)

let multcp_complex (keys : Keys.t) a values =
  let params = keys.params in
  let m =
    Rns_poly.to_eval params
      (Encoding.encode params ~level:(level a) ~scale:params.scale values)
  in
  noised
    (a.noise_est +. units.keyswitch)
    (mk (Rns_poly.mul params a.c0 m) (Rns_poly.mul params a.c1 m)
       (a.scale *. params.scale))

let rescale (keys : Keys.t) a =
  let params = keys.params in
  let dropped = Params.modulus_at params ~level:(level a) in
  noised
    (a.noise_est +. units.rescale)
    (mk
       (Rns_poly.rescale_last params a.c0)
       (Rns_poly.rescale_last params a.c1)
       (a.scale /. float_of_int dropped))

let modswitch (keys : Keys.t) a ~down =
  if down < 0 then invalid_arg "Eval.modswitch: negative";
  let params = keys.params in
  let target = level a - down in
  {
    a with
    c0 = Rns_poly.to_level params ~level:target a.c0;
    c1 = Rns_poly.to_level params ~level:target a.c1;
  }

let negate (keys : Keys.t) a =
  let p = keys.params in
  { a with c0 = Rns_poly.neg p a.c0; c1 = Rns_poly.neg p a.c1 }

let multcp_exact (keys : Keys.t) a values ~target =
  let params = keys.params in
  let l = level a in
  if l < 2 then invalid_arg "Eval.multcp_exact: level below 2";
  let q = float_of_int (Params.modulus_at params ~level:l) in
  let encode_scale = target *. q /. a.scale in
  let values = pad_slots params values in
  let m =
    Rns_poly.to_eval params
      (Encoding.encode_real params ~level:l ~scale:encode_scale values)
  in
  let product =
    noised
      (a.noise_est +. units.keyswitch)
      (mk (Rns_poly.mul params a.c0 m) (Rns_poly.mul params a.c1 m)
         (a.scale *. encode_scale))
  in
  let r = rescale keys product in
  (* Floating bookkeeping can be off by one ulp; pin the target. *)
  { r with scale = target }

let adjust_scale (keys : Keys.t) a ~target =
  multcp_exact keys a (Array.make keys.params.slots 1.0) ~target

(* --- lazy key switching: fused rotate-and-sum --------------------------- *)

let eager_switch_env () =
  match Sys.getenv_opt "HALO_EAGER_SWITCH" with
  | Some ("1" | "on" | "true" | "ON" | "TRUE") -> true
  | _ -> false

(* Fused rotate-and-sum: sum_g coeff_g * rotate(a, o_g), paying the
   mod-down and (with coefficients) the rescale once for the whole group.
   The canonical algebra accumulates every member's key-switch MAC in the
   extended basis (plaintext factors folded into the MAC over Q*P), mods
   down once, adds the direct Q-side parts, and rescales the sum once.

   Lazy mode shares one digit decomposition of [c1] across the group (via
   the cross-op memo); eager mode recomputes it per member, exactly as an
   unfused sequence of rotations would.  Decomposition is a deterministic
   function of [c1] and the extended-basis accumulation is exact modular
   arithmetic, so the two modes are bit-identical — as is any key-cache
   configuration, since evicted keys regenerate deterministically. *)
let rot_sum (keys : Keys.t) ?mode a ~terms =
  let params = keys.params in
  let eager =
    match mode with Some `Eager -> true | Some `Lazy -> false | None -> eager_switch_env ()
  in
  if terms = [] then invalid_arg "Eval.rot_sum: empty term list";
  let with_coeffs = match terms with (_, c) :: _ -> c <> None | [] -> false in
  List.iter
    (fun (_, c) ->
      if (c <> None) <> with_coeffs then
        invalid_arg "Eval.rot_sum: mixed plain and pure terms")
    terms;
  let l = level a in
  if with_coeffs && l < 2 then invalid_arg "Eval.rot_sum: level below 2";
  let has_rotation = List.exists (fun (o, _) -> o <> 0) terms in
  let shared_dec =
    if has_rotation && not eager then Some (decompose_cached keys a) else None
  in
  let term_dec () =
    match shared_dec with Some d -> d | None -> Keys.decompose keys a.c1
  in
  let mac = ref None in
  let q0 = ref None (* direct Q-side contributions to c0 *)
  and q1 = ref None (* zero-offset contributions to c1 *) in
  let add_into r x =
    match !r with None -> r := Some x | Some y -> r := Some (Rns_poly.add params y x)
  in
  List.iter
    (fun (offset, coeff) ->
      (* One canonical-embedding rounding per coefficient; the first [l]
         rows of the extended images double as its mod-Q evaluation-domain
         residues, so the Q-side factor costs no extra transform. *)
      let ext =
        match coeff with
        | None -> None
        | Some values ->
          let values = pad_slots params values in
          let centered =
            Encoding.encode_real_centered params ~scale:params.scale values
          in
          Some (Keys.ext_of_centered keys ~level:l centered)
      in
      let m_q =
        match ext with
        | None -> None
        | Some e -> Some (Rns_poly.of_residues ~domain:Rns_poly.Eval (Array.sub e 0 l))
      in
      if offset = 0 then begin
        match m_q with
        | None ->
          add_into q0 a.c0;
          add_into q1 a.c1
        | Some m ->
          add_into q0 (Rns_poly.mul params a.c0 m);
          add_into q1 (Rns_poly.mul params a.c1 m)
      end
      else begin
        let k = Keys.galois_element params ~offset in
        let sk = Keys.rotation_key keys ~offset in
        let dec = term_dec () in
        let m =
          match !mac with
          | Some m -> m
          | None ->
            let m = Keys.mac_create keys dec in
            mac := Some m;
            m
        in
        Keys.mac_accumulate keys ~k ?coeff:ext sk dec m;
        let r0 = Rns_poly.automorphism params ~k a.c0 in
        match m_q with
        | None -> add_into q0 r0
        | Some mq -> add_into q0 (Rns_poly.mul params r0 mq)
      end)
    terms;
  let c0, c1 =
    match !mac with
    | None -> (Option.get !q0, Option.get !q1)
    | Some m ->
      let u0, u1 = Keys.mac_finish keys m in
      let c0 = match !q0 with None -> u0 | Some q -> Rns_poly.add params q u0 in
      let c1 = match !q1 with None -> u1 | Some q -> Rns_poly.add params q u1 in
      (c0, c1)
  in
  (* Same bound as the static RotSum rule: one key switch if any member
     rotates, plus (for weighted groups) one plaintext multiply's
     key-switch term and the single absorbed rescale. *)
  let est =
    a.noise_est
    +. (if has_rotation then units.keyswitch else 0.0)
    +. if with_coeffs then units.keyswitch +. units.rescale else 0.0
  in
  if with_coeffs then begin
    let dropped = Params.modulus_at params ~level:l in
    noised est
      (mk
         (Rns_poly.rescale_last params c0)
         (Rns_poly.rescale_last params c1)
         (a.scale *. params.scale /. float_of_int dropped))
  end
  else noised est (mk c0 c1 a.scale)
