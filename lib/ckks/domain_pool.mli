(** A persistent pool of OCaml 5 domains for the per-limb loops of the RNS
    kernel layer.  RNS limbs are independent, so the loops it runs are
    embarrassingly parallel: every index writes disjoint state and results
    are bit-identical for any pool size.

    The pool size is [HALO_DOMAINS] when set (must be a positive integer),
    otherwise [min 8 (Domain.recommended_domain_count ())].  Size 1 spawns
    no domains at all and runs everything in the caller -- the exact
    sequential semantics of the pre-pool code.  Workers are spawned lazily
    on the first parallel call and joined at exit. *)

val size : unit -> int
(** The pool size in effect (memoized; reads [HALO_DOMAINS] once). *)

val sequentially : (unit -> 'a) -> 'a
(** [sequentially f] runs [f ()] with every [parallel_for] it reaches
    degraded to a plain sequential loop, regardless of the pool size.
    Results are bit-identical to parallel execution (the pool's contract);
    tests use this to check exactly that without re-spawning processes. *)

val parallel_for : n:int -> (int -> unit) -> unit
(** [parallel_for ~n f] runs [f 0 .. f (n-1)], spread across the pool when
    it has more than one worker.  The caller participates in the work, so
    progress never depends on worker scheduling.  [f] must write only
    index-private state.  The first exception raised by any [f i] is
    re-raised in the caller after all workers have quiesced on the job;
    the remaining indices are claimed and skipped (not run), the job
    reference is released (no closure leak), and the pool remains fully
    usable for subsequent calls.  Calls from inside a pool job degrade to
    a plain sequential loop. *)
