type ct = {
  data : float array;
  ct_level : int;
  scale_bits : float;
  noise_est : float;
      (* Interval-style upper bound on the relative error, updated by every
         op with the same unit table as the static model
         ({!Halo_cost.Noise_units}).  Never consumes RNG, so threading it
         cannot perturb the noise stream. *)
}

let units = Halo_cost.Noise_units.default

type state = {
  slots : int;
  max_level : int;
  default_scale_bits : float;
  mutable rng : Random.State.t;
      (* mutable so a crash-recovery driver can reinstall a snapshot *)
  enc_noise : float;
  mult_noise : float;
  boot_noise : float;
  rescale_noise : float;
}

let create ?(seed = 0xB00) ?(enc_noise = 1e-7) ?(mult_noise = 1e-8)
    ?(boot_noise = 1e-5) ?(rescale_noise = Float.ldexp 1.0 (-25)) ~slots
    ~max_level ~scale_bits () =
  {
    slots;
    max_level;
    default_scale_bits = float_of_int scale_bits;
    rng = Random.State.make [| seed |];
    enc_noise;
    mult_noise;
    boot_noise;
    rescale_noise;
  }

let name = "ref"
let slots st = st.slots
let max_level st = st.max_level
let level _st ct = ct.ct_level
let rng_state st = Random.State.copy st.rng
let set_rng_state st rng = st.rng <- Random.State.copy rng
let make_ct ?(noise_est = 0.0) ~data ~level ~scale_bits () =
  { data; ct_level = level; scale_bits; noise_est }

let noise_estimate _st ct = ct.noise_est
let inflate_noise _st ct ~by = { ct with noise_est = ct.noise_est +. by }

let fail op ?level fmt =
  Printf.ksprintf
    (fun reason ->
      raise
        (Halo_error.Backend_error
           { site = Halo_error.site ?level ~backend:name op; reason }))
    fmt

let gaussian st sigma =
  let u1 = Random.State.float st.rng 1.0 +. 1e-12 in
  let u2 = Random.State.float st.rng 1.0 in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2) *. sigma

let pad st values =
  if Array.length values = st.slots then values
  else begin
    let out = Array.make st.slots 0.0 in
    Array.blit values 0 out 0 (min (Array.length values) st.slots);
    out
  end

let check_level op ct low =
  if ct.ct_level < low then
    fail op ~level:ct.ct_level "level %d below %d" ct.ct_level low

let check_match op a b =
  if a.ct_level <> b.ct_level then
    fail op ~level:a.ct_level "level mismatch (%d vs %d)" a.ct_level b.ct_level;
  if Float.abs (a.scale_bits -. b.scale_bits) > 0.5 then
    fail op ~level:a.ct_level "scale mismatch (%g vs %g bits)" a.scale_bits
      b.scale_bits

let encrypt st ~level values =
  if level < 1 || level > st.max_level then
    fail "encrypt" ~level "level out of range (max %d)" st.max_level;
  let data = Array.map (fun v -> v +. gaussian st st.enc_noise) (pad st values) in
  {
    data;
    ct_level = level;
    scale_bits = st.default_scale_bits;
    noise_est = units.enc;
  }

let decrypt _st ct = Array.copy ct.data

let addcc _st a b =
  check_match "addcc" a b;
  {
    a with
    data = Array.map2 ( +. ) a.data b.data;
    noise_est = Float.max a.noise_est b.noise_est;
  }

let subcc _st a b =
  check_match "subcc" a b;
  {
    a with
    data = Array.map2 ( -. ) a.data b.data;
    noise_est = Float.max a.noise_est b.noise_est;
  }

let addcp st a values =
  check_level "addcp" a 1;
  { a with data = Array.map2 ( +. ) a.data (pad st values) }

let multcc st a b =
  (* The paper (section 2.2): multiplication constrains only the operand
     levels; scales multiply. *)
  if a.ct_level <> b.ct_level then
    fail "multcc" ~level:a.ct_level "level mismatch (%d vs %d)" a.ct_level
      b.ct_level;
  check_level "multcc" a 1;
  let noisy v = v +. (Float.abs v *. gaussian st st.mult_noise) in
  {
    a with
    data = Array.map2 (fun x y -> noisy (x *. y)) a.data b.data;
    scale_bits = a.scale_bits +. b.scale_bits;
    noise_est = a.noise_est +. b.noise_est +. units.keyswitch;
  }

let multcp st a values =
  check_level "multcp" a 1;
  let noisy v = v +. (Float.abs v *. gaussian st st.mult_noise) in
  {
    a with
    data = Array.map2 (fun x y -> noisy (x *. y)) a.data (pad st values);
    scale_bits = a.scale_bits +. st.default_scale_bits;
    noise_est = a.noise_est +. units.keyswitch;
  }

let rotate st a ~offset =
  check_level "rotate" a 1;
  let n = st.slots in
  let shift = ((offset mod n) + n) mod n in
  let ks = if offset = 0 then 0.0 else units.keyswitch in
  {
    a with
    data = Array.init n (fun i -> a.data.((i + shift) mod n));
    noise_est = a.noise_est +. ks;
  }

(* Cleartext rotations have no shared key-switch work to hoist: the grouped
   form is exactly the sequence of single rotates (which consume no RNG, so
   grouping cannot perturb the noise stream either). *)
let rotate_many st a ~offsets = List.map (fun offset -> rotate st a ~offset) offsets

let rescale st a =
  check_level "rescale" a 2;
  (* Dropping one prime divides the scale by ~2^scale_bits and adds rounding
     error at the scale's resolution. *)
  let data = Array.map (fun v -> v +. gaussian st st.rescale_noise) a.data in
  {
    data;
    ct_level = a.ct_level - 1;
    scale_bits = a.scale_bits -. st.default_scale_bits;
    noise_est = a.noise_est +. units.rescale;
  }

(* Fused rotate-and-sum evaluates the exact unfused sequence — rotations
   (no RNG), then each member's multcp + rescale in term order, then the
   add chain — so the noise-stream draws are identical to the unfused run
   and fused vs. unfused programs stay bit-identical on this backend. *)
let rot_sum st a ~terms =
  if terms = [] then fail "rot_sum" ~level:a.ct_level "empty term list";
  let rotated = List.map (fun (o, c) -> (rotate st a ~offset:o, c)) terms in
  let members =
    List.map
      (fun (r, c) ->
        match c with None -> r | Some m -> rescale st (multcp st r m))
      rotated
  in
  match members with
  | [] -> assert false
  | m :: ms -> List.fold_left (addcc st) m ms

let modswitch _st a ~down =
  if down < 0 then fail "modswitch" ~level:a.ct_level "negative drop %d" down;
  check_level "modswitch" a (down + 1);
  { a with ct_level = a.ct_level - down }

let bootstrap st a ~target =
  if target < 1 || target > st.max_level then
    fail "bootstrap" ~level:a.ct_level "target %d out of range (max %d)" target
      st.max_level;
  {
    data = Array.map (fun v -> v +. gaussian st st.boot_noise) a.data;
    ct_level = target;
    scale_bits = st.default_scale_bits;
    noise_est = units.bootstrap;
  }

let negate _st a = { a with data = Array.map Float.neg a.data }
