(* A small persistent pool of OCaml 5 domains for the embarrassingly
   parallel per-limb loops of the RNS kernel layer.

   Design constraints, in order:
   - pool size 1 (or HALO_DOMAINS=1) must mean "no domains, run in the
     caller" so the sequential semantics of the seed are reproduced exactly;
   - every index writes disjoint state, so results are bit-deterministic
     for ANY pool size and schedule -- parallelism never changes outputs;
   - dispatch must be cheap (one mutex round-trip and a broadcast) because
     jobs are microseconds-to-milliseconds of kernel work.

   Workers block on a condition variable between jobs; a job is a shared
   next-index counter that the workers AND the caller drain with
   fetch-and-add, so the caller always participates and a 1-core machine
   still completes every job even if the workers never get scheduled. *)

type job = {
  run : int -> unit;
  total : int;
  next : int Atomic.t;
  completed : int Atomic.t;
  error : exn option Atomic.t;
}

type pool = {
  mutex : Mutex.t;
  cond : Condition.t;
  mutable current : job option;
  mutable seq : int;
  mutable stop : bool;
  mutable handles : unit Domain.t list;
}

let parse_size s =
  match int_of_string_opt (String.trim s) with
  | Some v when v >= 1 -> v
  | _ -> invalid_arg "HALO_DOMAINS must be a positive integer"

let default_size () =
  match Sys.getenv_opt "HALO_DOMAINS" with
  | Some s -> parse_size s
  | None -> max 1 (min 8 (Domain.recommended_domain_count ()))

(* Workers set this flag so a parallel_for reached from inside a job falls
   back to a plain loop instead of deadlocking on its own pool. *)
let in_worker = Domain.DLS.new_key (fun () -> false)

let drain job =
  let rec go () =
    let i = Atomic.fetch_and_add job.next 1 in
    if i < job.total then begin
      (* Once a task has failed the job is doomed: claim-and-skip the
         remaining indices so every drainer quiesces quickly instead of
         burning cores on work whose result will be discarded.  [completed]
         still counts the skipped indices -- the caller's wait is on all
         indices being claimed and finished-or-skipped. *)
      if Atomic.get job.error = None then (
        try job.run i
        with e -> ignore (Atomic.compare_and_set job.error None (Some e)));
      Atomic.incr job.completed;
      go ()
    end
  in
  go ()

let worker pool () =
  Domain.DLS.set in_worker true;
  let seen = ref 0 in
  let rec loop () =
    Mutex.lock pool.mutex;
    while pool.seq = !seen && not pool.stop do
      Condition.wait pool.cond pool.mutex
    done;
    if pool.stop then Mutex.unlock pool.mutex
    else begin
      seen := pool.seq;
      let job = pool.current in
      Mutex.unlock pool.mutex;
      (match job with Some j -> drain j | None -> ());
      loop ()
    end
  in
  loop ()

let size_memo = ref None

let size () =
  match !size_memo with
  | Some s -> s
  | None ->
    let s = default_size () in
    size_memo := Some s;
    s

let pool_memo = ref None

let shutdown pool =
  Mutex.lock pool.mutex;
  pool.stop <- true;
  Condition.broadcast pool.cond;
  Mutex.unlock pool.mutex;
  List.iter Domain.join pool.handles

let get_pool () =
  match !pool_memo with
  | Some p -> p
  | None ->
    let p =
      {
        mutex = Mutex.create ();
        cond = Condition.create ();
        current = None;
        seq = 0;
        stop = false;
        handles = [];
      }
    in
    p.handles <- List.init (size () - 1) (fun _ -> Domain.spawn (worker p));
    at_exit (fun () -> shutdown p);
    pool_memo := Some p;
    p

(* Borrow the worker flag to force sequential execution of [f]: every
   [parallel_for] reached inside it degrades to a plain loop.  Used by tests
   to compare pool-parallel against strictly sequential execution in one
   process (results must be bit-identical). *)
let sequentially f =
  let saved = Domain.DLS.get in_worker in
  Domain.DLS.set in_worker true;
  Fun.protect ~finally:(fun () -> Domain.DLS.set in_worker saved) f

let sequential_for n f =
  for i = 0 to n - 1 do
    f i
  done

let parallel_for ~n f =
  if n <= 0 then ()
  else if n = 1 then f 0
  else if size () <= 1 || Domain.DLS.get in_worker then sequential_for n f
  else begin
    let pool = get_pool () in
    let job =
      {
        run = f;
        total = n;
        next = Atomic.make 0;
        completed = Atomic.make 0;
        error = Atomic.make None;
      }
    in
    Mutex.lock pool.mutex;
    pool.current <- Some job;
    pool.seq <- pool.seq + 1;
    Condition.broadcast pool.cond;
    Mutex.unlock pool.mutex;
    drain job;
    while Atomic.get job.completed < n do
      Domain.cpu_relax ()
    done;
    (* All indices are claimed and finished (or skipped after a failure):
       the workers have quiesced on this job.  Drop the pool's reference so
       a failed (or merely large) closure and everything it captured is not
       pinned until the next parallel call -- an exception must not leak the
       job, and the pool stays reusable. *)
    Mutex.lock pool.mutex;
    (match pool.current with
     | Some j when j == job -> pool.current <- None
     | _ -> ());
    Mutex.unlock pool.mutex;
    match Atomic.get job.error with Some e -> raise e | None -> ()
  end
