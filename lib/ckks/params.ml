type t = {
  n : int;
  slots : int;
  max_level : int;
  moduli : int array;
  special : int;
  scale : float;
  sigma : float;
  ntts : Ntt.ctx array;
  ntt_special : Ntt.ctx;
  rescale_inv : int array array;
  rescale_inv_shoup : int array array;
  special_inv : int array;
  special_inv_shoup : int array;
}

type spec = { spec_log_n : int; spec_log_q : int; spec_scale_bits : int; spec_max_level : int }

let paper_spec =
  { spec_log_n = 17; spec_log_q = 1479; spec_scale_bits = 51; spec_max_level = 16 }

let make ?(sigma = 3.2) ~log_n ~max_level ~base_bits ~scale_bits () =
  if base_bits > 31 then invalid_arg "Params.make: base_bits > 31";
  if scale_bits >= base_bits then
    invalid_arg "Params.make: scale_bits must be below base_bits";
  if max_level < 1 then invalid_arg "Params.make: max_level < 1";
  let n = 1 lsl log_n in
  (* The base prime and the special prime sit near 2^base_bits (the special
     prime must dominate every rescale prime for key-switching noise), while
     rescale primes sit near 2^scale_bits so that rescaling divides the scale
     by approximately the scale itself. *)
  let base = Primes.ntt_prime_below ~n ((1 lsl base_bits) - 1) in
  let special = Primes.ntt_prime_below ~n (base - 1) in
  let rescale_primes =
    Primes.ntt_primes ~n ~bits:scale_bits ~count:(max_level - 1)
  in
  let moduli = Array.of_list (base :: rescale_primes) in
  let ntts = Array.map (fun q -> Ntt.make_ctx ~q ~n) moduli in
  (* Precomputed inverse tables: rescale_inv.(j).(i) = moduli.(j)^{-1} mod
     moduli.(i) for i < j (the constants of an exact rescale dropping prime
     j), special_inv.(t) = special^{-1} mod moduli.(t) (the division by P
     closing every key switch).  Each carries its Shoup companion so the
     hot loops never call Modarith.inv (a full Fermat exponentiation) nor a
     hardware division. *)
  let rescale_inv =
    Array.init max_level (fun j ->
        Array.init j (fun i ->
            Modarith.inv ~m:moduli.(i) (moduli.(j) mod moduli.(i))))
  in
  let rescale_inv_shoup =
    Array.init max_level (fun j ->
        Array.init j (fun i -> Modarith.shoup ~m:moduli.(i) rescale_inv.(j).(i)))
  in
  let special_inv =
    Array.map (fun q -> Modarith.inv ~m:q (special mod q)) moduli
  in
  let special_inv_shoup =
    Array.mapi (fun i w -> Modarith.shoup ~m:moduli.(i) w) special_inv
  in
  {
    n;
    slots = n / 2;
    max_level;
    moduli;
    special;
    scale = Float.of_int (1 lsl scale_bits);
    sigma;
    ntts;
    ntt_special = Ntt.make_ctx ~q:special ~n;
    rescale_inv;
    rescale_inv_shoup;
    special_inv;
    special_inv_shoup;
  }

let test_small_memo = ref None
let test_deep_memo = ref None

let memoized cell build =
  match !cell with
  | Some p -> p
  | None ->
    let p = build () in
    cell := Some p;
    p

let test_small () =
  memoized test_small_memo (fun () ->
      make ~log_n:10 ~max_level:8 ~base_bits:31 ~scale_bits:27 ())

let test_deep () =
  memoized test_deep_memo (fun () ->
      make ~log_n:11 ~max_level:16 ~base_bits:31 ~scale_bits:27 ())

let modulus_at p ~level = p.moduli.(level - 1)
let ntt_at p ~idx = p.ntts.(idx)

(* FNV-1a over the fields that determine ciphertext compatibility.  The NTT
   contexts and inverse tables are derived from these, so hashing them would
   add nothing. *)
let fnv_prime = 0x100000001b3L
let fnv_seed = 0xcbf29ce484222325L

let fnv_int h v =
  let rec go h v i =
    if i = 8 then h
    else
      go
        (Int64.mul (Int64.logxor h (Int64.of_int (v land 0xff))) fnv_prime)
        (v lsr 8) (i + 1)
  in
  go h v 0

let fingerprint p =
  let h = fnv_int fnv_seed p.n in
  let h = fnv_int h p.max_level in
  let h = Array.fold_left fnv_int h p.moduli in
  let h = fnv_int h p.special in
  let h = fnv_int h (Int64.to_int (Int64.bits_of_float p.scale) land max_int) in
  fnv_int h (Int64.to_int (Int64.bits_of_float p.sigma) land max_int)
