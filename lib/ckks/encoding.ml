(* Slot j holds the polynomial's value at zeta^{r_j} with r_j = 5^j mod 2n.
   Evaluating a real polynomial p at ALL odd 2n-th roots can be done with one
   size-n FFT after twisting: p(zeta^{2t+1}) = sum_k (a_k zeta^k) omega^{tk}
   with omega = zeta^2 the primitive n-th root.  The slot with root index
   r_j sits at FFT bin t_j = (r_j - 1) / 2, and its complex conjugate (needed
   to make the coefficients real) at bin n - 1 - t_j. *)

let rot_group_cache : (int, int array) Hashtbl.t = Hashtbl.create 4

let rot_group (params : Params.t) =
  match Hashtbl.find_opt rot_group_cache params.n with
  | Some g -> g
  | None ->
    let two_n = 2 * params.n in
    let g = Array.make params.slots 1 in
    for j = 1 to params.slots - 1 do
      g.(j) <- g.(j - 1) * 5 mod two_n
    done;
    Hashtbl.add rot_group_cache params.n g;
    g

let zeta_pow (params : Params.t) k =
  let ang = Float.pi *. float_of_int k /. float_of_int params.n in
  { Complex.re = cos ang; im = sin ang }

let encode_centered (params : Params.t) ~scale values =
  let n = params.n and slots = params.slots in
  if Array.length values > slots then invalid_arg "Encoding.encode: too many values";
  let group = rot_group params in
  (* Fill the odd-root evaluation vector (indexed by FFT bin t). *)
  let evals = Array.make n Complex.zero in
  for j = 0 to slots - 1 do
    let v = if j < Array.length values then values.(j) else Complex.zero in
    let scaled = { Complex.re = v.re *. scale; im = v.im *. scale } in
    let t = (group.(j) - 1) / 2 in
    evals.(t) <- scaled;
    evals.(n - 1 - t) <- Complex.conj scaled
  done;
  (* b_k = (1/n) * FFT(evals)[k]; coefficients a_k = Re(b_k * zeta^{-k}). *)
  Fft.fft evals;
  Array.init n (fun k ->
      let b =
        { Complex.re = evals.(k).re /. float_of_int n;
          im = evals.(k).im /. float_of_int n }
      in
      let untwisted = Complex.mul b (zeta_pow params (-k)) in
      int_of_float (Float.round untwisted.re))

let encode (params : Params.t) ~level ~scale values =
  Rns_poly.of_centered_coeffs params ~level (encode_centered params ~scale values)

let encode_real_centered params ~scale values =
  encode_centered params ~scale
    (Array.map (fun re -> { Complex.re; im = 0.0 }) values)

let decode (params : Params.t) ~scale poly =
  let n = params.n and slots = params.slots in
  let coeffs = Rns_poly.centered_coeffs params poly in
  let twisted =
    Array.init n (fun k ->
        Complex.mul
          { Complex.re = float_of_int coeffs.(k); im = 0.0 }
          (zeta_pow params k))
  in
  Fft.ifft twisted;
  let group = rot_group params in
  Array.init slots (fun j ->
      let t = (group.(j) - 1) / 2 in
      let v = twisted.(t) in
      {
        Complex.re = v.re *. float_of_int n /. scale;
        im = v.im *. float_of_int n /. scale;
      })

let encode_real params ~level ~scale values =
  encode params ~level ~scale
    (Array.map (fun re -> { Complex.re; im = 0.0 }) values)

let decode_real params ~scale poly =
  Array.map (fun (c : Complex.t) -> c.re) (decode params ~scale poly)
