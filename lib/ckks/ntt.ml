(* In-place negacyclic NTT with the psi-twist merged into the twiddle
   factors (Longa-Naehrig style): the forward transform is a Cooley-Tukey
   decimation-in-time pass over twiddles psi^bitrev(i) taking natural order
   to bit-reversed order, the inverse a Gentleman-Sande pass over
   psi^{-bitrev(i)} taking it back, so neither the pre/post multiplication
   by psi^i nor an explicit bit-reversal permutation of the data is needed.
   Every butterfly multiply is a Shoup multiply (precomputed companions,
   one conditional subtraction) instead of a hardware division. *)

type ctx = {
  q : int;
  n : int;
  fwd_tw : int array; (* fwd_tw.(i) = psi^bitrev(i), CT access order *)
  fwd_tw_shoup : int array;
  inv_tw : int array; (* inv_tw.(i) = psi^{-bitrev(i)}, GS access order *)
  inv_tw_shoup : int array;
  n_inv : int;
  n_inv_shoup : int;
  slot_exp : int array; (* slot i of the eval domain holds p(psi^slot_exp.(i)) *)
  idx_of_exp : int array; (* inverse of slot_exp over odd exponents, size 2n *)
}

let q ctx = ctx.q
let n ctx = ctx.n

let powers ~m base count =
  let a = Array.make count 1 in
  for i = 1 to count - 1 do
    a.(i) <- Modarith.mul ~m a.(i - 1) base
  done;
  a

let log2 n =
  let rec go acc n = if n <= 1 then acc else go (acc + 1) (n lsr 1) in
  go 0 n

let bitrev ~bits i =
  let r = ref 0 in
  for b = 0 to bits - 1 do
    if i land (1 lsl b) <> 0 then r := !r lor (1 lsl (bits - 1 - b))
  done;
  !r

(* --- in-place transforms ------------------------------------------------ *)

(* The butterfly loops use unsafe array accesses -- the length check at
   entry makes every index provably in bounds (j + half <= n and twiddle
   indices stay below n by construction) -- and branchless reductions:
   [t + (q land (t asr 62))] adds q back exactly when [t] is negative,
   with no data-dependent branch for the predictor to miss (the compares
   are ~50/50 on random residues, so branching costs a misprediction on
   every other butterfly). *)

let check_len ctx a =
  if Array.length a <> ctx.n then invalid_arg "Ntt: length mismatch"

let forward_in_place ctx a =
  check_len ctx a;
  let q = ctx.q and n = ctx.n in
  let tw = ctx.fwd_tw and tws = ctx.fwd_tw_shoup in
  let t = ref n in
  let m = ref 1 in
  while !m < n do
    t := !t lsr 1;
    let half = !t in
    for i = 0 to !m - 1 do
      let j1 = 2 * i * half in
      let s = Array.unsafe_get tw (!m + i)
      and s_sh = Array.unsafe_get tws (!m + i) in
      for j = j1 to j1 + half - 1 do
        let u = Array.unsafe_get a j in
        let x = Array.unsafe_get a (j + half) in
        let qh = (x * s_sh) lsr 31 in
        let v0 = (x * s) - (qh * q) - q in
        let v = v0 + (q land (v0 asr 62)) in
        let su = u + v - q in
        Array.unsafe_set a j (su + (q land (su asr 62)));
        let d = u - v in
        Array.unsafe_set a (j + half) (d + (q land (d asr 62)))
      done
    done;
    m := !m lsl 1
  done

let inverse_in_place ctx a =
  check_len ctx a;
  let q = ctx.q and n = ctx.n in
  let tw = ctx.inv_tw and tws = ctx.inv_tw_shoup in
  let t = ref 1 in
  let m = ref n in
  while !m > 1 do
    let h = !m lsr 1 in
    let half = !t in
    let j1 = ref 0 in
    for i = 0 to h - 1 do
      let s = Array.unsafe_get tw (h + i)
      and s_sh = Array.unsafe_get tws (h + i) in
      for j = !j1 to !j1 + half - 1 do
        let u = Array.unsafe_get a j
        and v = Array.unsafe_get a (j + half) in
        let su = u + v - q in
        Array.unsafe_set a j (su + (q land (su asr 62)));
        let d0 = u - v in
        let d = d0 + (q land (d0 asr 62)) in
        let qh = (d * s_sh) lsr 31 in
        let r0 = (d * s) - (qh * q) - q in
        Array.unsafe_set a (j + half) (r0 + (q land (r0 asr 62)))
      done;
      j1 := !j1 + (2 * half)
    done;
    t := half lsl 1;
    m := h
  done;
  let ni = ctx.n_inv and nis = ctx.n_inv_shoup in
  for j = 0 to n - 1 do
    let x = Array.unsafe_get a j in
    let qh = (x * nis) lsr 31 in
    let r0 = (x * ni) - (qh * q) - q in
    Array.unsafe_set a j (r0 + (q land (r0 asr 62)))
  done

let forward ctx coeffs =
  let a = Array.copy coeffs in
  forward_in_place ctx a;
  a

let inverse ctx values =
  let a = Array.copy values in
  inverse_in_place ctx a;
  a

let pointwise_mul ctx a b =
  let m = ctx.q in
  Array.init ctx.n (fun i -> Modarith.mul ~m a.(i) b.(i))

let pointwise_mul_in_place ctx a b =
  check_len ctx a;
  check_len ctx b;
  let m = ctx.q in
  for i = 0 to ctx.n - 1 do
    Array.unsafe_set a i
      ((Array.unsafe_get a i * Array.unsafe_get b i) mod m)
  done

let negacyclic_mul ctx a b =
  let fa = forward ctx a and fb = forward ctx b in
  pointwise_mul_in_place ctx fa fb;
  inverse_in_place ctx fa;
  fa

(* --- context construction ---------------------------------------------- *)

let make_ctx ~q ~n =
  if n land (n - 1) <> 0 then invalid_arg "Ntt: n must be a power of two";
  if (q - 1) mod (2 * n) <> 0 then invalid_arg "Ntt: q <> 1 mod 2n";
  let bits = log2 n in
  let psi = Primes.primitive_root_2n ~q ~n in
  let psi_inv = Modarith.inv ~m:q psi in
  let psi_pows = powers ~m:q psi n in
  let psi_inv_pows = powers ~m:q psi_inv n in
  let fwd_tw = Array.init n (fun i -> psi_pows.(bitrev ~bits i)) in
  let inv_tw = Array.init n (fun i -> psi_inv_pows.(bitrev ~bits i)) in
  let n_inv = Modarith.inv ~m:q n in
  let ctx =
    {
      q;
      n;
      fwd_tw;
      fwd_tw_shoup = Array.map (fun w -> Modarith.shoup ~m:q w) fwd_tw;
      inv_tw;
      inv_tw_shoup = Array.map (fun w -> Modarith.shoup ~m:q w) inv_tw;
      n_inv;
      n_inv_shoup = Modarith.shoup ~m:q n_inv;
      slot_exp = [||];
      idx_of_exp = [||];
    }
  in
  (* Recover the evaluation ordering empirically: transforming the monomial X
     puts psi^e_i in slot i; a discrete-log table over the order-2n cyclic
     group <psi> reads the exponents back.  This keeps the automorphism
     permutation correct for whatever ordering the butterfly code produces. *)
  let dlog = Hashtbl.create (2 * n) in
  let p = ref 1 in
  for e = 0 to (2 * n) - 1 do
    Hashtbl.replace dlog !p e;
    p := Modarith.mul ~m:q !p psi
  done;
  let x = Array.make n 0 in
  if n > 1 then x.(1) <- 1 else x.(0) <- 1;
  forward_in_place ctx x;
  let slot_exp =
    if n > 1 then Array.map (fun v -> Hashtbl.find dlog v) x
    else [| 1 |]
  in
  let idx_of_exp = Array.make (2 * n) (-1) in
  Array.iteri (fun i e -> idx_of_exp.(e) <- i) slot_exp;
  { ctx with slot_exp; idx_of_exp }

(* --- evaluation-domain automorphism ------------------------------------ *)

(* The permutation depends only on (n, k): slot orderings are structural, so
   every ctx with the same n shares it.  A global mutex-guarded cache keeps
   lookups cheap; callers resolve the permutation once before fanning limbs
   out to the domain pool. *)
let perm_cache : (int * int, int array) Hashtbl.t = Hashtbl.create 16
let perm_mutex = Mutex.create ()

let eval_perm ctx ~k =
  let two_n = 2 * ctx.n in
  let k = ((k mod two_n) + two_n) mod two_n in
  if k land 1 = 0 then invalid_arg "Ntt.eval_perm: k must be odd";
  Mutex.lock perm_mutex;
  let perm =
    match Hashtbl.find_opt perm_cache (ctx.n, k) with
    | Some p -> p
    | None ->
      (* sigma_k(p) evaluated at psi^e is p(psi^{e*k mod 2n}). *)
      let p =
        Array.init ctx.n (fun i ->
            ctx.idx_of_exp.(ctx.slot_exp.(i) * k mod two_n))
      in
      Hashtbl.add perm_cache (ctx.n, k) p;
      p
  in
  Mutex.unlock perm_mutex;
  perm
