(** Modular arithmetic on OCaml's native [int] for odd moduli below [2^31].

    Products of two operands below [2^31] fit in the 63-bit native integer,
    so no multi-precision arithmetic is needed anywhere in the substrate.
    All functions expect [0 <= a, b < m] unless stated otherwise. *)

val max_modulus : int
(** Largest supported modulus, [2^31]. *)

val add : m:int -> int -> int -> int
val sub : m:int -> int -> int -> int
val neg : m:int -> int -> int
val mul : m:int -> int -> int -> int

val pow : m:int -> int -> int -> int
(** [pow ~m b e] is [b^e mod m] for [e >= 0]. *)

val inv : m:int -> int -> int
(** Inverse modulo a prime [m] (via Fermat).  Raises [Invalid_argument] on a
    zero argument. *)

val shoup : m:int -> int -> int
(** [shoup ~m w] is the precomputed Shoup companion [floor (w * 2^31 / m)]
    of a fixed multiplicand [w < m].  Requires [m < 2^31]. *)

val mul_shoup : m:int -> int -> int -> int -> int
(** [mul_shoup ~m a w w_shoup] is [a * w mod m] computed without a hardware
    division, where [w_shoup = shoup ~m w].  Requires [0 <= a < 2^31] and
    [w < m]; this is the hot-path multiply of the NTT butterflies and of the
    precomputed-inverse rescale paths. *)

val reduce : m:int -> int -> int
(** Reduce an arbitrary (possibly negative) integer into [0, m). *)

val center : m:int -> int -> int
(** [center ~m a] maps a residue [a] in [0, m) to its centered representative
    in [(-m/2, m/2]]. *)
