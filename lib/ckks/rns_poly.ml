type domain = Coeff | Eval

type t = { level : int; domain : domain; res : int array array }

let level p = p.level
let domain p = p.domain

(* Per-limb loops fan out across the domain pool; tiny rings (the real
   bootstrap tests run n = 64) stay sequential because dispatch would cost
   more than the arithmetic.  Limbs are independent, so results are
   bit-identical either way. *)
let par (params : Params.t) n f =
  if params.n >= 512 then Domain_pool.parallel_for ~n f
  else
    for i = 0 to n - 1 do
      f i
    done

let zero ?(domain = Coeff) (params : Params.t) ~level =
  { level; domain; res = Array.init level (fun _ -> Array.make params.n 0) }

let of_centered_coeffs (params : Params.t) ~level coeffs =
  let embed q = Array.map (fun c -> Modarith.reduce ~m:q c) coeffs in
  {
    level;
    domain = Coeff;
    res = Array.init level (fun i -> embed params.moduli.(i));
  }

let of_residues ?(domain = Coeff) res = { level = Array.length res; domain; res }

(* --- domain conversions ------------------------------------------------ *)

let to_eval (params : Params.t) p =
  match p.domain with
  | Eval -> p
  | Coeff ->
    let out = Array.make p.level [||] in
    par params p.level (fun i ->
        let r = Array.copy p.res.(i) in
        Ntt.forward_in_place (Params.ntt_at params ~idx:i) r;
        out.(i) <- r);
    { p with domain = Eval; res = out }

let to_coeff (params : Params.t) p =
  match p.domain with
  | Coeff -> p
  | Eval ->
    let out = Array.make p.level [||] in
    par params p.level (fun i ->
        let r = Array.copy p.res.(i) in
        Ntt.inverse_in_place (Params.ntt_at params ~idx:i) r;
        out.(i) <- r);
    { p with domain = Coeff; res = out }

let centered_coeffs (params : Params.t) p =
  let q0 = params.moduli.(0) in
  (* Only the base residue is needed: convert that single limb rather than
     the whole polynomial when it is NTT-resident. *)
  let r0 =
    match p.domain with
    | Coeff -> p.res.(0)
    | Eval ->
      let r = Array.copy p.res.(0) in
      Ntt.inverse_in_place (Params.ntt_at params ~idx:0) r;
      r
  in
  Array.map (fun r -> Modarith.center ~m:q0 r) r0

(* Pointwise ops are domain-agnostic (the NTT is linear), but both operands
   must live in the same domain; mixed pairs are lifted to Eval, the
   resident domain of homomorphic pipelines. *)
let align params a b =
  if a.domain = b.domain then (a, b) else (to_eval params a, to_eval params b)

(* Specialized limb loops: branchless reductions ([t + (q land (t asr 62))]
   re-adds q exactly when [t] went negative) and unsafe accesses guarded by
   one length check per limb, as in the NTT butterflies. *)
let map2 (params : Params.t) combine_limb a b =
  if a.level <> b.level then invalid_arg "Rns_poly: level mismatch";
  let a, b = align params a b in
  let out = Array.make a.level [||] in
  par params a.level (fun i ->
      let x = a.res.(i) and y = b.res.(i) in
      if Array.length x <> Array.length y then
        invalid_arg "Rns_poly: length mismatch";
      out.(i) <- combine_limb params.moduli.(i) x y);
  { level = a.level; domain = a.domain; res = out }

let add params a b =
  map2 params
    (fun q x y ->
      let n = Array.length x in
      let dst = Array.make n 0 in
      for j = 0 to n - 1 do
        let s = Array.unsafe_get x j + Array.unsafe_get y j - q in
        Array.unsafe_set dst j (s + (q land (s asr 62)))
      done;
      dst)
    a b

let sub params a b =
  map2 params
    (fun q x y ->
      let n = Array.length x in
      let dst = Array.make n 0 in
      for j = 0 to n - 1 do
        let d = Array.unsafe_get x j - Array.unsafe_get y j in
        Array.unsafe_set dst j (d + (q land (d asr 62)))
      done;
      dst)
    a b

let neg (params : Params.t) a =
  {
    a with
    res =
      Array.mapi
        (fun i r -> Array.map (fun c -> Modarith.neg ~m:params.moduli.(i) c) r)
        a.res;
  }

let mul (params : Params.t) a b =
  if a.level <> b.level then invalid_arg "Rns_poly.mul: level mismatch";
  let a = to_eval params a and b = to_eval params b in
  let out = Array.make a.level [||] in
  par params a.level (fun i ->
      out.(i) <-
        Ntt.pointwise_mul (Params.ntt_at params ~idx:i) a.res.(i) b.res.(i));
  { level = a.level; domain = Eval; res = out }

let automorphism (params : Params.t) ~k a =
  let n = params.n in
  let two_n = 2 * n in
  (* Normalize once so j * k cannot overflow and the inner loop adds a
     bounded step instead of multiplying. *)
  let k = ((k mod two_n) + two_n) mod two_n in
  match a.domain with
  | Eval ->
    (* NTT-resident automorphism: a pure slot permutation. *)
    let perm = Ntt.eval_perm (Params.ntt_at params ~idx:0) ~k in
    let out = Array.make a.level [||] in
    par params a.level (fun i ->
        let r = a.res.(i) in
        if Array.length r <> n then invalid_arg "Rns_poly: length mismatch";
        let dst = Array.make n 0 in
        for j = 0 to n - 1 do
          Array.unsafe_set dst j
            (Array.unsafe_get r (Array.unsafe_get perm j))
        done;
        out.(i) <- dst);
    { a with res = out }
  | Coeff ->
    let out = Array.make a.level [||] in
    par params a.level (fun i ->
        let q = params.moduli.(i) in
        let r = a.res.(i) in
        let dst = Array.make n 0 in
        let pos = ref 0 in
        for j = 0 to n - 1 do
          let p = !pos in
          if p < n then dst.(p) <- Modarith.add ~m:q dst.(p) r.(j)
          else dst.(p - n) <- Modarith.sub ~m:q dst.(p - n) r.(j);
          let next = p + k in
          pos := (if next >= two_n then next - two_n else next)
        done;
        out.(i) <- dst);
    { a with res = out }

let rescale_last (params : Params.t) a =
  if a.level < 2 then invalid_arg "Rns_poly.rescale_last: level < 2";
  (* Rescaling needs a centered representative of the dropped residue, so it
     is the coefficient-domain boundary of NTT-resident pipelines. *)
  let a = to_coeff params a in
  let last_idx = a.level - 1 in
  let ql = params.moduli.(last_idx) in
  let last = a.res.(last_idx) in
  let n = params.n in
  let out = Array.make (a.level - 1) [||] in
  let half_ql = ql lsr 1 in
  par params (a.level - 1) (fun i ->
      let q = params.moduli.(i) in
      let ql_inv = params.rescale_inv.(last_idx).(i) in
      let ql_inv_shoup = params.rescale_inv_shoup.(last_idx).(i) in
      let src = a.res.(i) in
      if Array.length src <> n || Array.length last <> n then
        invalid_arg "Rns_poly: length mismatch";
      let dst = Array.make n 0 in
      (* (c - [c]_{q_l}) * q_l^{-1} mod q_i, with a centered representative
         of the dropped residue to halve the rounding error.  The branchless
         fast path needs |rep| <= ql/2 < q so the difference sits in
         (-q, 2q); the chain's primes always satisfy that (scale primes
         share a narrow band below the base prime), but fall back to the
         generic reductions if a hand-built chain does not. *)
      if half_ql < q then
        for j = 0 to n - 1 do
          let lj = Array.unsafe_get last j in
          let rep = lj - (ql land ((half_ql - lj) asr 62)) in
          let d0 = Array.unsafe_get src j - rep in
          let d0 = d0 + (q land (d0 asr 62)) in
          let d1 = d0 - q in
          let d = d1 + (q land (d1 asr 62)) in
          let qh = (d * ql_inv_shoup) lsr 31 in
          let r0 = (d * ql_inv) - (qh * q) - q in
          Array.unsafe_set dst j (r0 + (q land (r0 asr 62)))
        done
      else
        for j = 0 to n - 1 do
          let rep = Modarith.center ~m:ql last.(j) in
          let diff = Modarith.sub ~m:q src.(j) (Modarith.reduce ~m:q rep) in
          dst.(j) <- Modarith.mul_shoup ~m:q diff ql_inv ql_inv_shoup
        done;
      out.(i) <- dst);
  { level = a.level - 1; domain = Coeff; res = out }

(* Dropping limbs is valid in either domain: each limb is an independent
   residue vector whatever its representation. *)
let drop_last a =
  if a.level < 2 then invalid_arg "Rns_poly.drop_last: level < 2";
  { a with level = a.level - 1; res = Array.sub a.res 0 (a.level - 1) }

let to_level _params ~level a =
  if a.level < level then invalid_arg "Rns_poly.to_level: cannot raise level"
  else if a.level = level then a
  else begin
    if level < 1 then invalid_arg "Rns_poly.to_level: level < 1";
    { a with level; res = Array.sub a.res 0 level }
  end
