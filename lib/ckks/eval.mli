(** Homomorphic evaluation on RNS-CKKS ciphertexts: the operation set of the
    paper's Section 2 (addcc/addcp, multcc/multcp, rotate, rescale,
    modswitch), plus encryption and decryption.

    Every ciphertext tracks its exact floating-point [scale]; [rescale]
    divides it by the dropped prime, [multcc] multiplies the operand scales.
    Level semantics follow the paper: a ciphertext at level [l] carries [l]
    residue polynomials and any operation requires [l >= 1]. *)

type ct = private {
  c0 : Rns_poly.t;
  c1 : Rns_poly.t;
  scale : float;
  mutable digits : (Rns_poly.t * Keys.decomposed) option;
      (** cross-op digit memo: the mod-up decomposition of [c1] tagged with
          the [c1] object it was computed from; valid only while the tag is
          physically equal to the current [c1] (see {!set_digit_cache}) *)
  mutable noise_est : float;
      (** interval-style upper bound on the relative error, updated by
          every op with {!Halo_cost.Noise_units.default}'s per-op rules so
          it is directly comparable to the static {!Noise_budget} bound *)
}

val level : ct -> int
val scale : ct -> float

val noise_est : ct -> float
(** The running noise upper bound (pure bookkeeping, never consumes RNG). *)

val set_noise_est : ct -> float -> unit
(** Overwrite the bound in place — used by the bootstrapping oracle (whose
    result noise is the bootstrap unit, not a fresh encryption's) and by
    the persistence codec when reassembling checkpointed ciphertexts. *)

val inflate_noise : ct -> by:float -> ct
(** Functional copy with [by] added to the bound; the payload (and any
    carried digit memo) is untouched.  Fault injection uses this to make
    silent noise spikes visible to the runtime monitor. *)

val of_parts : c0:Rns_poly.t -> c1:Rns_poly.t -> scale:float -> ct
(** Assemble a ciphertext from raw polynomials (used by the bootstrapping
    pipeline's ModRaise, which reinterprets residues over a larger
    modulus). *)

val encrypt : Keys.t -> level:int -> float array -> ct
(** Public-key encryption of real slot values at the default scale
    (shorter vectors are zero-padded to [slots]). *)

val encrypt_sym : Keys.t -> level:int -> float array -> ct
(** Symmetric encryption; used by tests and by the bootstrapping oracle. *)

val decrypt : Keys.t -> ct -> float array

val decrypt_complex : Keys.t -> ct -> Complex.t array

val addcc : Keys.t -> ct -> ct -> ct
val subcc : Keys.t -> ct -> ct -> ct
val addcp : Keys.t -> ct -> float array -> ct
val multcc : Keys.t -> ct -> ct -> ct
(** Includes relinearization.  The result scale is the product of the operand
    scales; callers are expected to [rescale] afterwards. *)

val multcp : Keys.t -> ct -> float array -> ct
(** The plaintext is encoded at the default scale. *)

val rotate : Keys.t -> ct -> offset:int -> ct
(** Circular left rotation of the slot vector by [offset]. *)

val rotate_many : Keys.t -> ct -> offsets:int list -> ct list
(** Hoisted rotations of one ciphertext: performs the key-switch digit
    decomposition of [c1] once and applies each offset's Galois automorphism
    and switching key to the shared digits ({!Keys.apply_rotated}).  Each
    element of the result is bit-identical to [rotate ~offset] for the
    corresponding offset (including zero offsets, which return the input),
    while paying the decomposition cost once instead of once per offset. *)

val conjugate : Keys.t -> ct -> ct
(** Slot-wise complex conjugation (the Galois automorphism [X -> X^{-1}]). *)

val multcp_complex : Keys.t -> ct -> Complex.t array -> ct
(** Plaintext multiplication by a complex vector (used by the bootstrapping
    pipeline's homomorphic DFT matrices). *)

val rescale : Keys.t -> ct -> ct
val modswitch : Keys.t -> ct -> down:int -> ct
val negate : Keys.t -> ct -> ct

val multcp_exact : Keys.t -> ct -> float array -> target:float -> ct
(** Plaintext multiplication immediately followed by a rescale, with the
    plaintext encoded at the scale that makes the result's scale exactly
    [target].  This is how practical RNS-CKKS implementations absorb the
    drift of primes that only approximate the scale; the deep Chebyshev
    trees of {!Bootstrap_real} compound that drift multiplicatively and
    need the exact form.  Consumes one level. *)

val adjust_scale : Keys.t -> ct -> target:float -> ct
(** Multiply by an exact-scale plaintext one: rescales the ciphertext's
    scale to exactly [target] at the cost of one level. *)

(** {2 Cross-op digit caching and lazy key switching} *)

val set_digit_cache : bool -> unit
(** Enables/disables the cross-op digit memo (default on, or off when
    [HALO_DIGIT_CACHE] is [0]/[off]/[false]).  Purely a time/memory trade:
    results are bit-identical either way, because the decomposition is a
    deterministic function of [c1].  Reuses are counted in the key-set
    cache statistics and fold into [Stats.decompositions_saved]. *)

val rot_sum :
  Keys.t -> ?mode:[ `Lazy | `Eager ] -> ct -> terms:(int * float array option) list -> ct
(** Fused rotate-and-sum reduction: [sum_g coeff_g * rotate(a, o_g)] with
    the mod-down paid once for the whole group.  Terms must be uniformly
    pure ([None] coefficients: plain rotate-and-sum, level preserved) or
    weighted ([Some] coefficients, encoded at the default scale: the
    matvec_diag shape, consuming one level via a single final rescale).
    Zero offsets contribute the (scaled) input directly without a key
    switch.

    [`Lazy] (default) shares one digit decomposition of [c1] across the
    group; [`Eager] recomputes it per member (set [HALO_EAGER_SWITCH=1] to
    default to eager).  The two modes are bit-identical down to the last
    bit: decomposition is deterministic and the extended-basis MAC
    accumulation is exact modular arithmetic.  Raises [Invalid_argument]
    on an empty group, mixed pure/weighted terms, or a weighted group below
    level 2. *)
