(** RNS-CKKS parameter sets.

    A parameter set fixes the ring degree [n], the modulus chain (one base
    prime that is never dropped, [max_level - 1] rescale primes close to the
    encoding scale, and one special prime reserved for key switching), the
    default encoding scale and the error distribution width.

    The paper's evaluation uses [n = 2^17, log Q = 1479, R_f = 2^51, L = 16],
    which needs multi-precision arithmetic; we expose that set as a
    descriptor ({!paper_spec}) for printing Table 1, and run the lattice
    backend on small NTT-friendly parameter sets whose arithmetic fits the
    63-bit native [int] (see DESIGN.md, substitution table). *)

type t = private {
  n : int;  (** polynomial modulus degree (power of two) *)
  slots : int;  (** [n / 2] *)
  max_level : int;  (** [L]: number of ciphertext moduli *)
  moduli : int array;  (** length [max_level]; [moduli.(0)] is the base *)
  special : int;  (** key-switching special prime *)
  scale : float;  (** default encoding scale *)
  sigma : float;  (** error distribution standard deviation *)
  ntts : Ntt.ctx array;  (** NTT context per ciphertext modulus *)
  ntt_special : Ntt.ctx;
  rescale_inv : int array array;
      (** [rescale_inv.(j).(i) = moduli.(j)^-1 mod moduli.(i)] for [i < j]:
          the constants of an exact rescale dropping prime [j]. *)
  rescale_inv_shoup : int array array;
      (** Shoup companions of {!rescale_inv} (see {!Modarith.mul_shoup}). *)
  special_inv : int array;
      (** [special_inv.(t) = special^-1 mod moduli.(t)], closing every key
          switch without a per-call Fermat exponentiation. *)
  special_inv_shoup : int array;  (** Shoup companions of {!special_inv}. *)
}

val make :
  ?sigma:float ->
  log_n:int ->
  max_level:int ->
  base_bits:int ->
  scale_bits:int ->
  unit ->
  t
(** Builds a parameter set.  Requires [base_bits <= 31] and
    [scale_bits < base_bits].  Rescale primes are chosen just below
    [2^scale_bits] so that rescaling approximately preserves the scale. *)

val test_small : unit -> t
(** [n = 2^10], [L = 8] — fast enough for unit tests. *)

val test_deep : unit -> t
(** [n = 2^11], [L = 16] — matches the paper's level budget. *)

(** Descriptor of the paper's Table 1 parameter set (not runnable on native
    ints; used for printing and for the abstract compiler configuration). *)
type spec = { spec_log_n : int; spec_log_q : int; spec_scale_bits : int; spec_max_level : int }

val paper_spec : spec

val modulus_at : t -> level:int -> int
(** The prime dropped when rescaling from [level], i.e. [moduli.(level - 1)]. *)

val ntt_at : t -> idx:int -> Ntt.ctx

val fingerprint : t -> int64
(** FNV-1a hash of the fields that determine ciphertext compatibility
    ([n], [max_level], the modulus chain, the special prime, the scale and
    the error width).  The durable artifact store stamps every frame with
    this value so that bytes written under one parameter set are rejected
    loudly — never decoded wrongly — under another. *)
