type secret = { coeffs : int array }

(* k0.(i).(t) / k1.(i).(t): NTT-domain residues of the i-th digit key over
   chain position t, where t < max_level indexes ciphertext moduli and
   t = max_level is the special prime.  k0s/k1s hold the Shoup companions of
   every key residue: the key side of the switch MAC is fixed at generation,
   so the inner product runs entirely on division-free multiplies. *)
type switch_key = {
  k0 : int array array array;
  k1 : int array array array;
  k0s : int array array array;
  k1s : int array array array;
}

type t = {
  params : Params.t;
  secret : secret;
  pk0 : Rns_poly.t;
  pk1 : Rns_poly.t;
  relin : switch_key;
  rotations : (int, switch_key) Hashtbl.t;
  rotations_mutex : Mutex.t;
      (* serializes on-demand rotation-key generation: lookups may come from
         several domains at once, and a bare Hashtbl race on first use could
         generate (and consume RNG for) the same key twice *)
  mutable rng : Random.State.t;
      (* mutable so a restored key set resumes its key-generation stream *)
}

(* Per-position loops fan out across the domain pool; tiny rings stay
   sequential because dispatch would cost more than the arithmetic. *)
let par (params : Params.t) n f =
  if params.n >= 512 then Domain_pool.parallel_for ~n f
  else
    for i = 0 to n - 1 do
      f i
    done

(* Chain accessors: position t is a ciphertext modulus for t < L, the special
   prime for t = L. *)
let chain_modulus (params : Params.t) t =
  if t < params.max_level then params.moduli.(t) else params.special

let chain_ntt (params : Params.t) t =
  if t < params.max_level then Params.ntt_at params ~idx:t else params.ntt_special

let chain_len (params : Params.t) = params.max_level + 1

(* Exact negacyclic product of two small integer polynomials, used only at
   key generation for s^2 (coefficients stay below n, far from overflow). *)
let small_negacyclic_mul a b =
  let n = Array.length a in
  let out = Array.make n 0 in
  for i = 0 to n - 1 do
    if a.(i) <> 0 then
      for j = 0 to n - 1 do
        let k = i + j in
        if k < n then out.(k) <- out.(k) + (a.(i) * b.(j))
        else out.(k - n) <- out.(k - n) - (a.(i) * b.(j))
      done
  done;
  out

let shoup_companions params h =
  Array.map
    (fun digit ->
      Array.mapi
        (fun t limb ->
          let q = chain_modulus params t in
          Array.map (fun w -> Modarith.shoup ~m:q w) limb)
        digit)
    h

let ntt_of_centered params t coeffs =
  let q = chain_modulus params t in
  Ntt.forward (chain_ntt params t) (Array.map (fun c -> Modarith.reduce ~m:q c) coeffs)

(* Switching key from s' (given by centered integer coefficients) to the main
   secret s: for each digit i, (k0_i, k1_i) with
   k0_i = -k1_i * s + e_i + P * D_i * s'  over Q*P,
   where D_i is the CRT idempotent of q_i (so P*D_i*s' has residue
   [P]_{q_i} * s' at position i and zero elsewhere, including mod P). *)
let make_switch_key params rng ~secret_coeffs ~source_coeffs =
  let n = (params : Params.t).n in
  let l = params.max_level in
  let len = chain_len params in
  let s_ntt = Array.init len (fun t -> ntt_of_centered params t secret_coeffs) in
  let digit i =
    let e = Sampler.gaussian rng ~n ~sigma:params.sigma in
    let k0 = Array.make len [||] and k1 = Array.make len [||] in
    for t = 0 to len - 1 do
      let q = chain_modulus params t in
      let ctx = chain_ntt params t in
      let a = Array.init n (fun _ -> Random.State.full_int rng q) in
      let a_ntt = Ntt.forward ctx a in
      let as_ntt = Array.init n (fun j -> Modarith.mul ~m:q a_ntt.(j) s_ntt.(t).(j)) in
      let e_ntt = ntt_of_centered params t e in
      let payload_ntt =
        if t = i then begin
          let p_mod_q = Modarith.reduce ~m:q params.special in
          let src = ntt_of_centered params t source_coeffs in
          Array.map (fun c -> Modarith.mul ~m:q c p_mod_q) src
        end
        else Array.make n 0
      in
      let b_ntt =
        Array.init n (fun j ->
            Modarith.add ~m:q
              (Modarith.sub ~m:q e_ntt.(j) as_ntt.(j))
              payload_ntt.(j))
      in
      k0.(t) <- b_ntt;
      k1.(t) <- a_ntt
    done;
    (k0, k1)
  in
  let digits = Array.init l digit in
  let k0 = Array.map fst digits and k1 = Array.map snd digits in
  { k0; k1; k0s = shoup_companions params k0; k1s = shoup_companions params k1 }

let galois_element (params : Params.t) ~offset =
  let two_n = 2 * params.n in
  (* 5 has order n/2 in (Z/2nZ)*, so reduce the offset modulo n/2 first. *)
  let order = params.n / 2 in
  let r = ((offset mod order) + order) mod order in
  let rec pow acc i = if i = 0 then acc else pow (acc * 5 mod two_n) (i - 1) in
  pow 1 r

let secret_poly keys ~level =
  Rns_poly.of_centered_coeffs keys.params ~level keys.secret.coeffs

let keygen ?(seed = 0x51CC5) params =
  let rng = Random.State.make [| seed |] in
  let n = (params : Params.t).n in
  let s = Sampler.ternary rng ~n in
  let l = params.max_level in
  (* Public key at full level: pk0 = -a*s + e, pk1 = a. *)
  let a = Rns_poly.of_residues (Sampler.uniform_residues rng ~n ~moduli:params.moduli) in
  let e =
    Rns_poly.of_centered_coeffs params ~level:l (Sampler.gaussian rng ~n ~sigma:params.sigma)
  in
  let s_poly = Rns_poly.of_centered_coeffs params ~level:l s in
  let pk0 = Rns_poly.add params (Rns_poly.neg params (Rns_poly.mul params a s_poly)) e in
  let s2 = small_negacyclic_mul s s in
  let relin = make_switch_key params rng ~secret_coeffs:s ~source_coeffs:s2 in
  {
    params;
    secret = { coeffs = s };
    pk0;
    pk1 = a;
    relin;
    rotations = Hashtbl.create 8;
    rotations_mutex = Mutex.create ();
    rng;
  }

let apply_automorphism_small ~n ~k coeffs =
  let two_n = 2 * n in
  let out = Array.make n 0 in
  for j = 0 to n - 1 do
    let pos = j * k mod two_n in
    if pos < n then out.(pos) <- out.(pos) + coeffs.(j)
    else out.(pos - n) <- out.(pos - n) - coeffs.(j)
  done;
  out

(* The whole lookup-or-generate runs under the mutex: concurrent first-use
   lookups of the same Galois element must observe exactly one generation
   (and one RNG draw), so a racing caller blocks until the winner has
   published the key. *)
let galois_key keys k =
  let params = keys.params in
  Mutex.lock keys.rotations_mutex;
  let sk =
    match Hashtbl.find_opt keys.rotations k with
    | Some sk -> sk
    | None ->
      let rotated = apply_automorphism_small ~n:params.n ~k keys.secret.coeffs in
      let sk =
        try
          make_switch_key params keys.rng ~secret_coeffs:keys.secret.coeffs
            ~source_coeffs:rotated
        with e ->
          Mutex.unlock keys.rotations_mutex;
          raise e
      in
      Hashtbl.add keys.rotations k sk;
      sk
  in
  Mutex.unlock keys.rotations_mutex;
  sk

let rotation_key keys ~offset = galois_key keys (galois_element keys.params ~offset)

let conjugation_key keys = galois_key keys ((2 * keys.params.n) - 1)

let relin_key keys = keys.relin

(* --- codec hooks for Halo_persist -------------------------------------- *)

let rng_state keys = Random.State.copy keys.rng
let set_rng_state keys rng = keys.rng <- Random.State.copy rng
let switch_key_raw sk = (sk.k0, sk.k1)

let switch_key_of_raw (params : Params.t) ~k0 ~k1 =
  let l = params.max_level and n = params.n in
  let check_half name h =
    if Array.length h <> l then
      invalid_arg (Printf.sprintf "Keys.switch_key_of_raw: %s has %d digits, expected %d" name (Array.length h) l);
    Array.iter
      (fun digit ->
        if Array.length digit <> l + 1 then
          invalid_arg (Printf.sprintf "Keys.switch_key_of_raw: %s digit spans %d chain positions, expected %d" name (Array.length digit) (l + 1));
        Array.iter
          (fun limb ->
            if Array.length limb <> n then
              invalid_arg (Printf.sprintf "Keys.switch_key_of_raw: %s limb length %d, expected %d" name (Array.length limb) n))
          digit)
      h
  in
  check_half "k0" k0;
  check_half "k1" k1;
  { k0; k1; k0s = shoup_companions params k0; k1s = shoup_companions params k1 }

let rotation_entries keys =
  List.sort compare (Hashtbl.fold (fun k sk acc -> (k, sk) :: acc) keys.rotations [])

let of_parts params ~secret ~pk0 ~pk1 ~relin ~rotations ~rng =
  if Array.length secret <> (params : Params.t).n then
    invalid_arg "Keys.of_parts: secret length mismatch";
  let tbl = Hashtbl.create (max 8 (List.length rotations)) in
  List.iter (fun (k, sk) -> Hashtbl.replace tbl k sk) rotations;
  {
    params;
    secret = { coeffs = secret };
    pk0;
    pk1;
    relin;
    rotations = tbl;
    rotations_mutex = Mutex.create ();
    rng = Random.State.copy rng;
  }

(* --- key switching: decompose once, apply per key ----------------------- *)

(* The mod-up/decompose product of [key_switch], reusable across several
   [apply] calls (hoisted rotations): [digits.(pos).(i)] is the NTT-domain
   image of the i-th centered digit at extended-chain position
   [positions.(pos)].  Decomposition is the expensive half of a key switch
   (l forward transforms per chain position); everything downstream of it is
   a pointwise inner product with the switching key. *)
type decomposed = {
  d_level : int;  (* number of digits = ciphertext level l *)
  positions : int array;  (* chain positions: 0..l-1 then the special prime *)
  digits : int array array array;
}

let decompose keys d =
  let params = keys.params in
  let n = params.n in
  (* Digit decomposition needs centered coefficient-domain residues, so this
     is one of the two coefficient boundaries of the NTT-resident pipeline
     (the other is rescale). *)
  let d = Rns_poly.to_coeff params d in
  let l = Rns_poly.level d in
  let res = (d : Rns_poly.t).res in
  (* Positions 0..l-1 are ciphertext moduli, position l is the special
     prime.  Each position's digit transforms are independent of the
     others: fan them out over the domain pool. *)
  let positions = Array.append (Array.init l (fun t -> t)) [| params.max_level |] in
  let np = Array.length positions in
  let digits = Array.init np (fun _ -> Array.make l [||]) in
  par params np (fun pos ->
      let t = positions.(pos) in
      let q = chain_modulus params t in
      let ctx = chain_ntt params t in
      for i = 0 to l - 1 do
        let qi = params.moduli.(i) in
        let src = res.(i) in
        (* Center mod q_i and embed mod q directly into the retained digit
           array, then transform it in place: the loop allocates nothing
           beyond its outputs. *)
        let dst = Array.make n 0 in
        for j = 0 to n - 1 do
          dst.(j) <- Modarith.reduce ~m:q (Modarith.center ~m:qi src.(j))
        done;
        Ntt.forward_in_place ctx dst;
        digits.(pos).(i) <- dst
      done);
  { d_level = l; positions; digits }

let divide_by_p (params : Params.t) ~level:l u =
  let n = params.n in
  let p = params.special in
  let special = u.(l) in
  let out = Array.make l [||] in
  par params l (fun t ->
      let q = params.moduli.(t) in
      let p_inv = params.special_inv.(t) in
      let p_inv_shoup = params.special_inv_shoup.(t) in
      out.(t) <-
        Array.init n (fun j ->
            let rep = Modarith.center ~m:p special.(j) in
            let diff = Modarith.sub ~m:q u.(t).(j) (Modarith.reduce ~m:q rep) in
            Modarith.mul_shoup ~m:q diff p_inv p_inv_shoup));
  Rns_poly.of_residues out

(* Inner product of the shared digits with one switching key.  When [perm]
   is given it is the evaluation-domain slot permutation of a Galois
   automorphism: reading the digits through it applies the automorphism to
   the decomposed polynomial on the fly, fused into the MAC, so the hoisted
   rotation path allocates no permuted copies.  All arithmetic here is
   exact modular integer arithmetic, so the result is bit-identical to
   decomposing the (permuted) polynomial from scratch. *)
let apply_perm keys ?perm sk dec =
  let params = keys.params in
  let n = params.n in
  let l = dec.d_level in
  let np = Array.length dec.positions in
  let u0 = Array.make np [||] and u1 = Array.make np [||] in
  par params np (fun pos ->
      let t = dec.positions.(pos) in
      let q = chain_modulus params t in
      let ctx = chain_ntt params t in
      let a0 = Array.make n 0 and a1 = Array.make n 0 in
      for i = 0 to l - 1 do
        let d_ntt = dec.digits.(pos).(i) in
        let k0 = sk.k0.(i).(t) and k1 = sk.k1.(i).(t) in
        let k0s = sk.k0s.(i).(t) and k1s = sk.k1s.(i).(t) in
        match perm with
        | None ->
          for j = 0 to n - 1 do
            let dj = d_ntt.(j) in
            a0.(j) <-
              Modarith.add ~m:q a0.(j) (Modarith.mul_shoup ~m:q dj k0.(j) k0s.(j));
            a1.(j) <-
              Modarith.add ~m:q a1.(j) (Modarith.mul_shoup ~m:q dj k1.(j) k1s.(j))
          done
        | Some perm ->
          for j = 0 to n - 1 do
            let dj = d_ntt.(perm.(j)) in
            a0.(j) <-
              Modarith.add ~m:q a0.(j) (Modarith.mul_shoup ~m:q dj k0.(j) k0s.(j));
            a1.(j) <-
              Modarith.add ~m:q a1.(j) (Modarith.mul_shoup ~m:q dj k1.(j) k1s.(j))
          done
      done;
      (* Back to the coefficient domain for the exact division by P. *)
      Ntt.inverse_in_place ctx a0;
      Ntt.inverse_in_place ctx a1;
      u0.(pos) <- a0;
      u1.(pos) <- a1);
  (divide_by_p params ~level:l u0, divide_by_p params ~level:l u1)

let apply keys sk dec = apply_perm keys sk dec

let apply_rotated keys sk ~k dec =
  let perm = Ntt.eval_perm (Params.ntt_at keys.params ~idx:0) ~k in
  apply_perm keys ~perm sk dec

let key_switch keys sk d = apply keys sk (decompose keys d)
