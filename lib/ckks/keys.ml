type secret = { coeffs : int array }

(* k0.(i).(t) / k1.(i).(t): NTT-domain residues of the i-th digit key over
   chain position t, where t < max_level indexes ciphertext moduli and
   t = max_level is the special prime.  k0s/k1s hold the Shoup companions of
   every key residue: the key side of the switch MAC is fixed at generation,
   so the inner product runs entirely on division-free multiplies. *)
type switch_key = {
  k0 : int array array array;
  k1 : int array array array;
  k0s : int array array array;
  k1s : int array array array;
}

(* One resident rotation key.  [bytes] is the exact heap footprint measured
   at generation ([Obj.reachable_words]); [last_use] is the LRU clock tick
   of the most recent fetch. *)
type cached_key = { sk : switch_key; bytes : int; mutable last_use : int }

type cache_stats = {
  mutable hits : int;
  mutable misses : int;  (* first-ever generations *)
  mutable evictions : int;
  mutable regenerations : int;  (* re-generation after eviction *)
  mutable digit_hits : int;  (* cross-op digit decompositions reused *)
}

type cache_snapshot = {
  snap_hits : int;
  snap_misses : int;
  snap_evictions : int;
  snap_regenerations : int;
  snap_digit_hits : int;
  snap_resident_bytes : int;
  snap_budget : int;
}

type t = {
  params : Params.t;
  secret : secret;
  pk0 : Rns_poly.t;
  pk1 : Rns_poly.t;
  relin : switch_key;
  rotations : (int, cached_key) Hashtbl.t;
  generated : (int, unit) Hashtbl.t;
      (* Galois elements generated at least once, so a re-miss after
         eviction counts as a regeneration, not a first miss *)
  rotations_mutex : Mutex.t;
      (* serializes on-demand rotation-key generation, LRU bookkeeping and
         eviction: lookups may come from several domains at once, and a bare
         Hashtbl race on first use could generate the same key twice or
         evict an entry mid-insert *)
  mutable rng : Random.State.t;
      (* mutable so a restored key set resumes its key-generation stream *)
  mutable key_budget : int;  (* bytes; 0 = unbounded *)
  mutable clock : int;  (* LRU clock, strictly increasing under the mutex *)
  mutable resident_bytes : int;  (* rotation keys only; relin/pk exempt *)
  cache : cache_stats;
  seed_base : int;
      (* derived from the secret: seeds the per-key generation streams, so
         an evicted key regenerates bit-identically in any fetch order *)
}

(* Per-position loops fan out across the domain pool; tiny rings stay
   sequential because dispatch would cost more than the arithmetic. *)
let par (params : Params.t) n f =
  if params.n >= 512 then Domain_pool.parallel_for ~n f
  else
    for i = 0 to n - 1 do
      f i
    done

(* Chain accessors: position t is a ciphertext modulus for t < L, the special
   prime for t = L. *)
let chain_modulus (params : Params.t) t =
  if t < params.max_level then params.moduli.(t) else params.special

let chain_ntt (params : Params.t) t =
  if t < params.max_level then Params.ntt_at params ~idx:t else params.ntt_special

let chain_len (params : Params.t) = params.max_level + 1

(* Exact negacyclic product of two small integer polynomials, used only at
   key generation for s^2 (coefficients stay below n, far from overflow). *)
let small_negacyclic_mul a b =
  let n = Array.length a in
  let out = Array.make n 0 in
  for i = 0 to n - 1 do
    if a.(i) <> 0 then
      for j = 0 to n - 1 do
        let k = i + j in
        if k < n then out.(k) <- out.(k) + (a.(i) * b.(j))
        else out.(k - n) <- out.(k - n) - (a.(i) * b.(j))
      done
  done;
  out

let shoup_companions params h =
  Array.map
    (fun digit ->
      Array.mapi
        (fun t limb ->
          let q = chain_modulus params t in
          Array.map (fun w -> Modarith.shoup ~m:q w) limb)
        digit)
    h

let ntt_of_centered params t coeffs =
  let q = chain_modulus params t in
  Ntt.forward (chain_ntt params t) (Array.map (fun c -> Modarith.reduce ~m:q c) coeffs)

(* Switching key from s' (given by centered integer coefficients) to the main
   secret s: for each digit i, (k0_i, k1_i) with
   k0_i = -k1_i * s + e_i + P * D_i * s'  over Q*P,
   where D_i is the CRT idempotent of q_i (so P*D_i*s' has residue
   [P]_{q_i} * s' at position i and zero elsewhere, including mod P). *)
let make_switch_key params rng ~secret_coeffs ~source_coeffs =
  let n = (params : Params.t).n in
  let l = params.max_level in
  let len = chain_len params in
  let s_ntt = Array.init len (fun t -> ntt_of_centered params t secret_coeffs) in
  let digit i =
    let e = Sampler.gaussian rng ~n ~sigma:params.sigma in
    let k0 = Array.make len [||] and k1 = Array.make len [||] in
    for t = 0 to len - 1 do
      let q = chain_modulus params t in
      let ctx = chain_ntt params t in
      let a = Array.init n (fun _ -> Random.State.full_int rng q) in
      let a_ntt = Ntt.forward ctx a in
      let as_ntt = Array.init n (fun j -> Modarith.mul ~m:q a_ntt.(j) s_ntt.(t).(j)) in
      let e_ntt = ntt_of_centered params t e in
      let payload_ntt =
        if t = i then begin
          let p_mod_q = Modarith.reduce ~m:q params.special in
          let src = ntt_of_centered params t source_coeffs in
          Array.map (fun c -> Modarith.mul ~m:q c p_mod_q) src
        end
        else Array.make n 0
      in
      let b_ntt =
        Array.init n (fun j ->
            Modarith.add ~m:q
              (Modarith.sub ~m:q e_ntt.(j) as_ntt.(j))
              payload_ntt.(j))
      in
      k0.(t) <- b_ntt;
      k1.(t) <- a_ntt
    done;
    (k0, k1)
  in
  let digits = Array.init l digit in
  let k0 = Array.map fst digits and k1 = Array.map snd digits in
  { k0; k1; k0s = shoup_companions params k0; k1s = shoup_companions params k1 }

let galois_element (params : Params.t) ~offset =
  let two_n = 2 * params.n in
  (* 5 has order n/2 in (Z/2nZ)*, so reduce the offset modulo n/2 first. *)
  let order = params.n / 2 in
  let r = ((offset mod order) + order) mod order in
  let rec pow acc i = if i = 0 then acc else pow (acc * 5 mod two_n) (i - 1) in
  pow 1 r

let secret_poly keys ~level =
  Rns_poly.of_centered_coeffs keys.params ~level keys.secret.coeffs

(* --- memory budget ------------------------------------------------------ *)

let parse_budget s =
  let s = String.trim s in
  let len = String.length s in
  if len = 0 then 0
  else begin
    let mult, digits =
      match Char.uppercase_ascii s.[len - 1] with
      | 'K' -> (1024, String.sub s 0 (len - 1))
      | 'M' -> (1024 * 1024, String.sub s 0 (len - 1))
      | 'G' -> (1024 * 1024 * 1024, String.sub s 0 (len - 1))
      | _ -> (1, s)
    in
    match int_of_string_opt (String.trim digits) with
    | Some v when v >= 0 -> v * mult
    | _ -> invalid_arg (Printf.sprintf "Keys: bad key budget %S" s)
  end

let budget_from_env () =
  match Sys.getenv_opt "HALO_KEY_BUDGET" with
  | None | Some "" -> 0
  | Some s -> parse_budget s

(* Exact resident footprint of one switching key: every word reachable from
   it (digit arrays, Shoup companions, headers), measured once at
   generation.  Word size is 8 on every supported platform. *)
let key_bytes (sk : switch_key) = 8 * Obj.reachable_words (Obj.repr sk)

let seed_base_of_secret coeffs =
  Array.fold_left
    (fun acc c -> ((acc * 31) + c + 0x1003F) land 0x3FFFFFFF)
    0x632BE5A coeffs

let fresh_cache () =
  { hits = 0; misses = 0; evictions = 0; regenerations = 0; digit_hits = 0 }

let keygen ?(seed = 0x51CC5) params =
  let rng = Random.State.make [| seed |] in
  let n = (params : Params.t).n in
  let s = Sampler.ternary rng ~n in
  let l = params.max_level in
  (* Public key at full level: pk0 = -a*s + e, pk1 = a. *)
  let a = Rns_poly.of_residues (Sampler.uniform_residues rng ~n ~moduli:params.moduli) in
  let e =
    Rns_poly.of_centered_coeffs params ~level:l (Sampler.gaussian rng ~n ~sigma:params.sigma)
  in
  let s_poly = Rns_poly.of_centered_coeffs params ~level:l s in
  let pk0 = Rns_poly.add params (Rns_poly.neg params (Rns_poly.mul params a s_poly)) e in
  let s2 = small_negacyclic_mul s s in
  let relin = make_switch_key params rng ~secret_coeffs:s ~source_coeffs:s2 in
  {
    params;
    secret = { coeffs = s };
    pk0;
    pk1 = a;
    relin;
    rotations = Hashtbl.create 8;
    generated = Hashtbl.create 8;
    rotations_mutex = Mutex.create ();
    rng;
    key_budget = budget_from_env ();
    clock = 0;
    resident_bytes = 0;
    cache = fresh_cache ();
    seed_base = seed_base_of_secret s;
  }

let apply_automorphism_small ~n ~k coeffs =
  let two_n = 2 * n in
  let out = Array.make n 0 in
  for j = 0 to n - 1 do
    let pos = j * k mod two_n in
    if pos < n then out.(pos) <- out.(pos) + coeffs.(j)
    else out.(pos - n) <- out.(pos - n) - coeffs.(j)
  done;
  out

(* Per-key generation stream: a deterministic function of the secret and the
   Galois element only.  Generation order, eviction history and pool size
   cannot perturb it, so a key evicted under memory pressure regenerates
   bit-identically on re-miss — eviction is invisible in every ciphertext
   bit — and a restored key set regenerates missing keys identically too. *)
let rotation_rng keys k = Random.State.make [| 0x6A105; keys.seed_base; k |]

(* Evict least-recently-used rotation keys until the resident set fits the
   budget.  Caller holds the mutex.  The newest entry (highest clock) always
   survives, so the key just fetched stays resident; fetched references a
   caller already holds remain valid after eviction (the GC keeps them
   alive), eviction only drops the cache's pointer. *)
let evict_over_budget keys =
  if keys.key_budget > 0 then
    while
      keys.resident_bytes > keys.key_budget && Hashtbl.length keys.rotations > 1
    do
      let victim =
        Hashtbl.fold
          (fun k (e : cached_key) acc ->
            match acc with
            | Some (_, (e' : cached_key)) when e'.last_use <= e.last_use -> acc
            | _ -> Some (k, e))
          keys.rotations None
      in
      match victim with
      | None -> ()
      | Some (k, e) ->
        Hashtbl.remove keys.rotations k;
        keys.resident_bytes <- keys.resident_bytes - e.bytes;
        keys.cache.evictions <- keys.cache.evictions + 1
    done

(* The whole lookup-or-generate runs under the mutex: concurrent first-use
   lookups of the same Galois element must observe exactly one generation,
   and eviction bookkeeping must never interleave with an insert. *)
let galois_key keys k =
  let params = keys.params in
  Mutex.lock keys.rotations_mutex;
  let sk =
    match Hashtbl.find_opt keys.rotations k with
    | Some entry ->
      keys.clock <- keys.clock + 1;
      entry.last_use <- keys.clock;
      keys.cache.hits <- keys.cache.hits + 1;
      entry.sk
    | None ->
      let sk =
        try
          let rotated =
            apply_automorphism_small ~n:params.n ~k keys.secret.coeffs
          in
          make_switch_key params (rotation_rng keys k)
            ~secret_coeffs:keys.secret.coeffs ~source_coeffs:rotated
        with e ->
          Mutex.unlock keys.rotations_mutex;
          raise e
      in
      let bytes = key_bytes sk in
      keys.clock <- keys.clock + 1;
      Hashtbl.replace keys.rotations k { sk; bytes; last_use = keys.clock };
      keys.resident_bytes <- keys.resident_bytes + bytes;
      if Hashtbl.mem keys.generated k then
        keys.cache.regenerations <- keys.cache.regenerations + 1
      else begin
        keys.cache.misses <- keys.cache.misses + 1;
        Hashtbl.replace keys.generated k ()
      end;
      evict_over_budget keys;
      sk
  in
  Mutex.unlock keys.rotations_mutex;
  sk

let rotation_key keys ~offset = galois_key keys (galois_element keys.params ~offset)

let conjugation_key keys = galois_key keys ((2 * keys.params.n) - 1)

let relin_key keys = keys.relin

let set_key_budget keys budget =
  if budget < 0 then invalid_arg "Keys.set_key_budget: negative budget";
  Mutex.lock keys.rotations_mutex;
  keys.key_budget <- budget;
  evict_over_budget keys;
  Mutex.unlock keys.rotations_mutex

let record_digit_hit keys =
  Mutex.lock keys.rotations_mutex;
  keys.cache.digit_hits <- keys.cache.digit_hits + 1;
  Mutex.unlock keys.rotations_mutex

let cache_stats keys =
  Mutex.lock keys.rotations_mutex;
  let s =
    {
      snap_hits = keys.cache.hits;
      snap_misses = keys.cache.misses;
      snap_evictions = keys.cache.evictions;
      snap_regenerations = keys.cache.regenerations;
      snap_digit_hits = keys.cache.digit_hits;
      snap_resident_bytes = keys.resident_bytes;
      snap_budget = keys.key_budget;
    }
  in
  Mutex.unlock keys.rotations_mutex;
  s

let reset_cache_stats keys =
  Mutex.lock keys.rotations_mutex;
  keys.cache.hits <- 0;
  keys.cache.misses <- 0;
  keys.cache.evictions <- 0;
  keys.cache.regenerations <- 0;
  keys.cache.digit_hits <- 0;
  Mutex.unlock keys.rotations_mutex

(* --- codec hooks for Halo_persist -------------------------------------- *)

let rng_state keys = Random.State.copy keys.rng
let set_rng_state keys rng = keys.rng <- Random.State.copy rng
let switch_key_raw sk = (sk.k0, sk.k1)

let switch_key_of_raw (params : Params.t) ~k0 ~k1 =
  let l = params.max_level and n = params.n in
  let check_half name h =
    if Array.length h <> l then
      invalid_arg (Printf.sprintf "Keys.switch_key_of_raw: %s has %d digits, expected %d" name (Array.length h) l);
    Array.iter
      (fun digit ->
        if Array.length digit <> l + 1 then
          invalid_arg (Printf.sprintf "Keys.switch_key_of_raw: %s digit spans %d chain positions, expected %d" name (Array.length digit) (l + 1));
        Array.iter
          (fun limb ->
            if Array.length limb <> n then
              invalid_arg (Printf.sprintf "Keys.switch_key_of_raw: %s limb length %d, expected %d" name (Array.length limb) n))
          digit)
      h
  in
  check_half "k0" k0;
  check_half "k1" k1;
  { k0; k1; k0s = shoup_companions params k0; k1s = shoup_companions params k1 }

let rotation_entries keys =
  Mutex.lock keys.rotations_mutex;
  let entries =
    Hashtbl.fold (fun k (e : cached_key) acc -> (k, e.sk) :: acc) keys.rotations []
  in
  Mutex.unlock keys.rotations_mutex;
  List.sort compare entries

let of_parts params ~secret ~pk0 ~pk1 ~relin ~rotations ~rng =
  if Array.length secret <> (params : Params.t).n then
    invalid_arg "Keys.of_parts: secret length mismatch";
  let keys =
    {
      params;
      secret = { coeffs = secret };
      pk0;
      pk1;
      relin;
      rotations = Hashtbl.create (max 8 (List.length rotations));
      generated = Hashtbl.create (max 8 (List.length rotations));
      rotations_mutex = Mutex.create ();
      rng = Random.State.copy rng;
      key_budget = budget_from_env ();
      clock = 0;
      resident_bytes = 0;
      cache = fresh_cache ();
      seed_base = seed_base_of_secret secret;
    }
  in
  List.iter
    (fun (k, sk) ->
      let bytes = key_bytes sk in
      keys.clock <- keys.clock + 1;
      Hashtbl.replace keys.rotations k { sk; bytes; last_use = keys.clock };
      keys.resident_bytes <- keys.resident_bytes + bytes;
      Hashtbl.replace keys.generated k ())
    rotations;
  (* A restored set honors the budget immediately; deterministic
     regeneration makes any eviction here bit-invisible downstream. *)
  evict_over_budget keys;
  keys

(* --- key switching: decompose once, apply per key ----------------------- *)

(* The mod-up/decompose product of [key_switch], reusable across several
   [apply] calls (hoisted rotations): [digits.(pos).(i)] is the NTT-domain
   image of the i-th centered digit at extended-chain position
   [positions.(pos)].  Decomposition is the expensive half of a key switch
   (l forward transforms per chain position); everything downstream of it is
   a pointwise inner product with the switching key. *)
type decomposed = {
  d_level : int;  (* number of digits = ciphertext level l *)
  positions : int array;  (* chain positions: 0..l-1 then the special prime *)
  digits : int array array array;
}

let decompose keys d =
  let params = keys.params in
  let n = params.n in
  (* Digit decomposition needs centered coefficient-domain residues, so this
     is one of the two coefficient boundaries of the NTT-resident pipeline
     (the other is rescale). *)
  let d = Rns_poly.to_coeff params d in
  let l = Rns_poly.level d in
  let res = (d : Rns_poly.t).res in
  (* Positions 0..l-1 are ciphertext moduli, position l is the special
     prime.  Each position's digit transforms are independent of the
     others: fan them out over the domain pool. *)
  let positions = Array.append (Array.init l (fun t -> t)) [| params.max_level |] in
  let np = Array.length positions in
  let digits = Array.init np (fun _ -> Array.make l [||]) in
  par params np (fun pos ->
      let t = positions.(pos) in
      let q = chain_modulus params t in
      let ctx = chain_ntt params t in
      for i = 0 to l - 1 do
        let qi = params.moduli.(i) in
        let src = res.(i) in
        (* Center mod q_i and embed mod q directly into the retained digit
           array, then transform it in place: the loop allocates nothing
           beyond its outputs. *)
        let dst = Array.make n 0 in
        for j = 0 to n - 1 do
          dst.(j) <- Modarith.reduce ~m:q (Modarith.center ~m:qi src.(j))
        done;
        Ntt.forward_in_place ctx dst;
        digits.(pos).(i) <- dst
      done);
  { d_level = l; positions; digits }

let divide_by_p (params : Params.t) ~level:l u =
  let n = params.n in
  let p = params.special in
  let special = u.(l) in
  let out = Array.make l [||] in
  par params l (fun t ->
      let q = params.moduli.(t) in
      let p_inv = params.special_inv.(t) in
      let p_inv_shoup = params.special_inv_shoup.(t) in
      out.(t) <-
        Array.init n (fun j ->
            let rep = Modarith.center ~m:p special.(j) in
            let diff = Modarith.sub ~m:q u.(t).(j) (Modarith.reduce ~m:q rep) in
            Modarith.mul_shoup ~m:q diff p_inv p_inv_shoup));
  Rns_poly.of_residues out

(* Inner product of the shared digits with one switching key.  When [perm]
   is given it is the evaluation-domain slot permutation of a Galois
   automorphism: reading the digits through it applies the automorphism to
   the decomposed polynomial on the fly, fused into the MAC, so the hoisted
   rotation path allocates no permuted copies.  All arithmetic here is
   exact modular integer arithmetic, so the result is bit-identical to
   decomposing the (permuted) polynomial from scratch. *)
let apply_perm keys ?perm sk dec =
  let params = keys.params in
  let n = params.n in
  let l = dec.d_level in
  let np = Array.length dec.positions in
  let u0 = Array.make np [||] and u1 = Array.make np [||] in
  par params np (fun pos ->
      let t = dec.positions.(pos) in
      let q = chain_modulus params t in
      let ctx = chain_ntt params t in
      let a0 = Array.make n 0 and a1 = Array.make n 0 in
      for i = 0 to l - 1 do
        let d_ntt = dec.digits.(pos).(i) in
        let k0 = sk.k0.(i).(t) and k1 = sk.k1.(i).(t) in
        let k0s = sk.k0s.(i).(t) and k1s = sk.k1s.(i).(t) in
        match perm with
        | None ->
          for j = 0 to n - 1 do
            let dj = d_ntt.(j) in
            a0.(j) <-
              Modarith.add ~m:q a0.(j) (Modarith.mul_shoup ~m:q dj k0.(j) k0s.(j));
            a1.(j) <-
              Modarith.add ~m:q a1.(j) (Modarith.mul_shoup ~m:q dj k1.(j) k1s.(j))
          done
        | Some perm ->
          for j = 0 to n - 1 do
            let dj = d_ntt.(perm.(j)) in
            a0.(j) <-
              Modarith.add ~m:q a0.(j) (Modarith.mul_shoup ~m:q dj k0.(j) k0s.(j));
            a1.(j) <-
              Modarith.add ~m:q a1.(j) (Modarith.mul_shoup ~m:q dj k1.(j) k1s.(j))
          done
      done;
      (* Back to the coefficient domain for the exact division by P. *)
      Ntt.inverse_in_place ctx a0;
      Ntt.inverse_in_place ctx a1;
      u0.(pos) <- a0;
      u1.(pos) <- a1);
  (divide_by_p params ~level:l u0, divide_by_p params ~level:l u1)

let apply keys sk dec = apply_perm keys sk dec

let apply_rotated keys sk ~k dec =
  let perm = Ntt.eval_perm (Params.ntt_at keys.params ~idx:0) ~k in
  apply_perm keys ~perm sk dec

let key_switch keys sk d = apply keys sk (decompose keys d)

(* --- lazy key switching: accumulate MACs, mod down once ----------------- *)

(* Extended-basis MAC accumulator for a whole rotate-and-sum reduction: each
   [mac_accumulate] adds one rotation's digit/key inner product (optionally
   scaled by a plaintext factor) into the running sums mod Q*P, still in the
   NTT domain; [mac_finish] pays the inverse transforms and the exact
   division by P once for the whole group.  Modular addition is exact,
   associative and commutative, so the finished pair is bit-identical
   whether the digits were shared (lazy) or recomputed per term (eager),
   for any accumulation partitioning across the domain pool. *)
type mac = {
  mac_level : int;
  mac_positions : int array;
  mac0 : int array array;
  mac1 : int array array;
}

let mac_create keys dec =
  let n = keys.params.n in
  let np = Array.length dec.positions in
  {
    mac_level = dec.d_level;
    mac_positions = Array.copy dec.positions;
    mac0 = Array.init np (fun _ -> Array.make n 0);
    mac1 = Array.init np (fun _ -> Array.make n 0);
  }

let mac_accumulate keys ?k ?coeff sk dec mac =
  let params = keys.params in
  let n = params.n in
  let l = dec.d_level in
  if mac.mac_level <> l then invalid_arg "Keys.mac_accumulate: level mismatch";
  let perm =
    match k with
    | None -> None
    | Some k -> Some (Ntt.eval_perm (Params.ntt_at params ~idx:0) ~k)
  in
  let np = Array.length dec.positions in
  par params np (fun pos ->
      let t = dec.positions.(pos) in
      let q = chain_modulus params t in
      let a0 = Array.make n 0 and a1 = Array.make n 0 in
      for i = 0 to l - 1 do
        let d_ntt = dec.digits.(pos).(i) in
        let k0 = sk.k0.(i).(t) and k1 = sk.k1.(i).(t) in
        let k0s = sk.k0s.(i).(t) and k1s = sk.k1s.(i).(t) in
        match perm with
        | None ->
          for j = 0 to n - 1 do
            let dj = d_ntt.(j) in
            a0.(j) <-
              Modarith.add ~m:q a0.(j) (Modarith.mul_shoup ~m:q dj k0.(j) k0s.(j));
            a1.(j) <-
              Modarith.add ~m:q a1.(j) (Modarith.mul_shoup ~m:q dj k1.(j) k1s.(j))
          done
        | Some perm ->
          for j = 0 to n - 1 do
            let dj = d_ntt.(perm.(j)) in
            a0.(j) <-
              Modarith.add ~m:q a0.(j) (Modarith.mul_shoup ~m:q dj k0.(j) k0s.(j));
            a1.(j) <-
              Modarith.add ~m:q a1.(j) (Modarith.mul_shoup ~m:q dj k1.(j) k1s.(j))
          done
      done;
      let acc0 = mac.mac0.(pos) and acc1 = mac.mac1.(pos) in
      match coeff with
      | None ->
        for j = 0 to n - 1 do
          acc0.(j) <- Modarith.add ~m:q acc0.(j) a0.(j);
          acc1.(j) <- Modarith.add ~m:q acc1.(j) a1.(j)
        done
      | Some c ->
        let cv = c.(pos) in
        for j = 0 to n - 1 do
          acc0.(j) <- Modarith.add ~m:q acc0.(j) (Modarith.mul ~m:q cv.(j) a0.(j));
          acc1.(j) <- Modarith.add ~m:q acc1.(j) (Modarith.mul ~m:q cv.(j) a1.(j))
        done)

let mac_finish keys mac =
  (* Consumes the accumulator: the inverse transforms run in place. *)
  let params = keys.params in
  let np = Array.length mac.mac_positions in
  par params np (fun pos ->
      let ctx = chain_ntt params mac.mac_positions.(pos) in
      Ntt.inverse_in_place ctx mac.mac0.(pos);
      Ntt.inverse_in_place ctx mac.mac1.(pos));
  ( divide_by_p params ~level:mac.mac_level mac.mac0,
    divide_by_p params ~level:mac.mac_level mac.mac1 )

(* NTT-domain images of a centered integer polynomial at every extended
   chain position for a level-[level] ciphertext: the plaintext factors of
   a lazy rotate-and-sum must multiply the MAC over Q AND the special
   prime.  The first [level] rows double as the evaluation-domain residues
   of the mod-Q encoding, so callers pay only one extra transform (the
   special prime) over a plain [multcp] encode. *)
let ext_of_centered keys ~level coeffs =
  let params = keys.params in
  let np = level + 1 in
  let out = Array.make np [||] in
  par params np (fun pos ->
      let t = if pos < level then pos else params.max_level in
      out.(pos) <- ntt_of_centered params t coeffs);
  out
