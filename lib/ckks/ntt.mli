(** Negacyclic number-theoretic transform over [Z_q[X]/(X^n + 1)].

    A [ctx] caches the twiddle factors for one [(q, n)] pair, together with
    their Shoup companions (see {!Modarith.mul_shoup}), so every butterfly
    multiply is a multiply-shift-subtract instead of a hardware division.
    The forward transform maps coefficient vectors to evaluations at the odd
    powers of a primitive [2n]-th root of unity (the psi twist is merged
    into the twiddles); pointwise products in that domain are negacyclic
    convolutions in the coefficient domain.

    The in-place variants are the kernel-layer entry points: they mutate
    their argument and allocate nothing. *)

type ctx

val make_ctx : q:int -> n:int -> ctx
(** Requires [q] prime with [q = 1 (mod 2n)] and [n] a power of two. *)

val q : ctx -> int
val n : ctx -> int

val forward_in_place : ctx -> int array -> unit
(** Coefficient domain -> evaluation domain, in place. *)

val inverse_in_place : ctx -> int array -> unit
(** Evaluation domain -> coefficient domain, in place (exact inverse of
    {!forward_in_place}). *)

val forward : ctx -> int array -> int array
(** Functional: returns a fresh array in the NTT domain. *)

val inverse : ctx -> int array -> int array

val pointwise_mul : ctx -> int array -> int array -> int array
(** Slotwise product of two evaluation-domain vectors. *)

val pointwise_mul_in_place : ctx -> int array -> int array -> unit
(** [pointwise_mul_in_place ctx a b] stores the slotwise product in [a]. *)

val negacyclic_mul : ctx -> int array -> int array -> int array
(** Convenience: [inverse (forward a . forward b)]. *)

val eval_perm : ctx -> k:int -> int array
(** The slot permutation implementing the Galois automorphism [X -> X^k]
    (odd [k]) directly in the evaluation domain: if [b] is the transform of
    [p] then the transform of [p(X^k)] is [i -> b.(perm.(i))].  Cached per
    [(n, k)]; safe to call from any domain. *)
