let max_modulus = 1 lsl 31

let add ~m a b =
  let s = a + b in
  if s >= m then s - m else s

let sub ~m a b =
  let d = a - b in
  if d < 0 then d + m else d

let neg ~m a = if a = 0 then 0 else m - a
let mul ~m a b = a * b mod m

let pow ~m b e =
  let rec go acc b e =
    if e = 0 then acc
    else
      let acc = if e land 1 = 1 then mul ~m acc b else acc in
      go acc (mul ~m b b) (e lsr 1)
  in
  go 1 (b mod m) e

let inv ~m a =
  if a = 0 then invalid_arg "Modarith.inv: zero";
  pow ~m a (m - 2)

(* Shoup multiplication: for a fixed multiplicand [w < m < 2^31] precompute
   [w' = floor(w * 2^31 / m)]; then for any [a < 2^31] the quotient estimate
   [qh = floor(a * w' / 2^31)] satisfies [qh <= floor(a*w/m) <= qh + 1], so
   [a*w - qh*m] lies in [0, 2m) and one conditional subtraction replaces the
   hardware division of [mul].  Every intermediate product stays below 2^62
   and therefore fits the 63-bit native int. *)
let shoup_shift = 31

let shoup ~m w =
  if w >= m then invalid_arg "Modarith.shoup: w >= m";
  (w lsl shoup_shift) / m

let mul_shoup ~m a w w_shoup =
  let qh = (a * w_shoup) lsr shoup_shift in
  let r = (a * w) - (qh * m) in
  if r >= m then r - m else r

let reduce ~m a =
  let r = a mod m in
  if r < 0 then r + m else r

let center ~m a = if a > m / 2 then a - m else a
