type ctx = {
  params : Params.t;
  range : int; (* bound on |I| *)
  sine_coeffs : float array; (* Chebyshev coefficients of sin(2 pi R s)/(2 pi) *)
  c2s_diags : Complex.t array array array; (* per half: diag per rotation *)
  c2s_conj_diags : Complex.t array array array;
  s2c_diags : Complex.t array array array;
}

(* --- small local Chebyshev fit (the approx library lives above this one in
   the dependency order, so we keep a self-contained copy). --- *)
let cheb_fit ~f ~degree =
  let n = degree + 1 in
  let node k = cos (Float.pi *. (float_of_int k +. 0.5) /. float_of_int n) in
  let values = Array.init n (fun k -> f (node k)) in
  Array.init n (fun j ->
      let sum = ref 0.0 in
      for k = 0 to n - 1 do
        sum :=
          !sum
          +. (values.(k)
             *. cos (Float.pi *. float_of_int j *. (float_of_int k +. 0.5)
                     /. float_of_int n))
      done;
      (if j = 0 then 1.0 else 2.0) *. !sum /. float_of_int n)

(* E_{jk} = zeta^{r_j * k}: the evaluation matrix of the canonical
   embedding (slot j holds the polynomial's value at zeta^{r_j}). *)
let embedding_entry (params : Params.t) j k =
  let group = Encoding.rot_group params in
  let two_n = 2 * params.n in
  let e = group.(j) * k mod two_n in
  let ang = Float.pi *. float_of_int e /. float_of_int params.n in
  { Complex.re = cos ang; im = sin ang }

let diagonals ~slots entry =
  (* diag_g[k] = M[k][(k + g) mod slots] for the Halevi-Shoup product. *)
  Array.init slots (fun g ->
      Array.init slots (fun k -> entry k ((k + g) mod slots)))

let default_range (params : Params.t) =
  (* 4-sigma bound on the coefficients of I = (c0 + c1 s - m) / q0 for a
     dense ternary secret: sigma ~ sqrt(n / 18). *)
  int_of_float (Float.round (4.0 *. sqrt (float_of_int params.n /. 18.0))) + 1

let make_ctx ?sine_degree ?range (params : Params.t) =
  let range = match range with Some r -> r | None -> default_range params in
  let degree =
    match sine_degree with
    | Some d -> d
    | None ->
      (* Rule of thumb: a Chebyshev series needs ~(argument swing) + slack
         terms; the argument of the sine spans 2 pi R. *)
      int_of_float (2.0 *. Float.pi *. float_of_int range) + 24
  in
  let r = float_of_int range in
  let sine_coeffs =
    cheb_fit ~degree ~f:(fun s -> sin (2.0 *. Float.pi *. r *. s) /. (2.0 *. Float.pi))
  in
  let slots = params.slots in
  let q0 = float_of_int params.moduli.(0) in
  let delta = params.scale in
  (* CoeffToSlot, half h: t_k = sum_j M_h[k][j] v_j + conj(M_h[k][j]) conj(v_j)
     with M_h[k][j] = Delta * conj(E_{j, k + h*slots}) / (n * q0). *)
  let c2s_entry h k j =
    let e = embedding_entry params j (k + (h * slots)) in
    let f = delta /. (float_of_int params.n *. q0) in
    { Complex.re = f *. e.re; im = -.f *. e.im }
  in
  let c2s_diags = Array.init 2 (fun h -> diagonals ~slots (c2s_entry h)) in
  let c2s_conj_diags =
    Array.map (Array.map (Array.map Complex.conj)) c2s_diags
  in
  (* SlotToCoeff, half h: out_j += P_h[j][k] u_h[k] with
     P_h[j][k] = E_{j, k + h*slots} * q0 / Delta. *)
  let s2c_entry h j k =
    let e = embedding_entry params j (k + (h * slots)) in
    let f = q0 /. delta in
    { Complex.re = f *. e.re; im = f *. e.im }
  in
  let s2c_diags = Array.init 2 (fun h -> diagonals ~slots (s2c_entry h)) in
  { params; range; sine_coeffs; c2s_diags; c2s_conj_diags; s2c_diags }

let range ctx = ctx.range
let sine_degree ctx = Array.length ctx.sine_coeffs - 1

let cheb_depth degree =
  let rec log2_ceil n acc = if n <= 1 then acc else log2_ceil ((n + 1) / 2) (acc + 1) in
  log2_ceil degree 0

let consumed ctx =
  (* C2S (1) + EvalMod: argument scaling (1) + product tree + coefficient
     multiplication (1) + S2C (1). *)
  1 + 1 + cheb_depth (sine_degree ctx) + 1 + 1

(* --- ciphertext-level helpers --- *)

let align keys a b =
  let la = Eval.level a and lb = Eval.level b in
  if la = lb then (a, b)
  else if la > lb then (Eval.modswitch keys a ~down:(la - lb), b)
  else (a, Eval.modswitch keys b ~down:(lb - la))

let add_aligned keys a b =
  let a, b = align keys a b in
  Eval.addcc keys a b

let sub_aligned keys a b =
  let a, b = align keys a b in
  Eval.subcc keys a b

(* Halevi-Shoup product: sum_g diag_g . rot(ct, g), one rescale at the end
   (every masked term shares the same scale). *)
let matmul keys diags ct =
  let acc = ref None in
  Array.iteri
    (fun g diag ->
      let rotated = Eval.rotate keys ct ~offset:g in
      let term = Eval.multcp_complex keys rotated diag in
      acc := Some (match !acc with None -> term | Some a -> Eval.addcc keys a term))
    diags;
  Eval.rescale keys (Option.get !acc)

(* Chebyshev evaluation on a ciphertext holding s in [-1, 1].

   Scales: rescale primes only approximate the encoding scale, and the
   squaring recurrences compound that drift multiplicatively (T_j's scale is
   off by drift^j), so cross-path ciphertext additions go through
   Eval.adjust_scale / Eval.multcp_exact, which hit exact target scales. *)
let cheb_eval (keys : Keys.t) coeffs t =
  let slots = keys.params.slots in
  let delta = keys.params.scale in
  let memo : (int, Eval.ct) Hashtbl.t = Hashtbl.create 32 in
  Hashtbl.replace memo 1 t;
  let rec cheb j =
    match Hashtbl.find_opt memo j with
    | Some v -> v
    | None ->
      let v =
        if j mod 2 = 0 then begin
          (* T_2m = 2 T_m^2 - 1 *)
          let h = cheb (j / 2) in
          let sq = Eval.rescale keys (Eval.multcc keys h h) in
          let doubled = Eval.addcc keys sq sq in
          Eval.addcp keys doubled (Array.make slots (-1.0))
        end
        else begin
          (* T_{2m+1} = 2 T_{m+1} T_m - T_1 *)
          let m = j / 2 in
          let a, b = align keys (cheb (m + 1)) (cheb m) in
          let prod = Eval.rescale keys (Eval.multcc keys a b) in
          let doubled = Eval.addcc keys prod prod in
          let t_matched = Eval.adjust_scale keys t ~target:(Eval.scale doubled) in
          sub_aligned keys doubled t_matched
        end
      in
      Hashtbl.replace memo j v;
      v
  in
  let acc = ref None in
  Array.iteri
    (fun j c ->
      if j > 0 && Float.abs c > 1e-12 then begin
        let term =
          Eval.multcp_exact keys (cheb j) (Array.make slots c) ~target:delta
        in
        acc := Some (match !acc with None -> term | Some a -> add_aligned keys a term)
      end)
    coeffs;
  let base = Option.get !acc in
  if Float.abs coeffs.(0) > 1e-12 then
    Eval.addcp keys base (Array.make slots coeffs.(0))
  else base

let modraise (keys : Keys.t) (ct : Eval.ct) =
  let params = keys.params in
  (* to_level drops limbs in whatever domain the ciphertext is resident in
     (cheap), and centered_coeffs then inverse-transforms only the surviving
     base limb -- ModRaise is a decrypt-shaped coefficient boundary. *)
  let raise_poly p =
    Rns_poly.of_centered_coeffs params ~level:params.max_level
      (Rns_poly.centered_coeffs params (Rns_poly.to_level params ~level:1 p))
  in
  (* Private constructors are not exported by Eval; rebuild through an
     encryption-free path: c0' and c1' reinterpret the same transcript over
     the larger modulus. *)
  Eval.of_parts ~c0:(raise_poly ct.c0) ~c1:(raise_poly ct.c1) ~scale:ct.scale

let bootstrap ctx (keys : Keys.t) ct =
  let params = keys.params in
  if params != ctx.params then invalid_arg "Bootstrap_real: parameter mismatch";
  let raised = modraise keys ct in
  (* CoeffToSlot: one ciphertext per coefficient half. *)
  let conj_ct = Eval.conjugate keys raised in
  let halves =
    List.init 2 (fun h ->
        let direct = matmul keys ctx.c2s_diags.(h) raised in
        let mirrored = matmul keys ctx.c2s_conj_diags.(h) conj_ct in
        Eval.addcc keys direct mirrored)
  in
  (* EvalMod: s = t / R, then q0-periodic reduction via the sine series. *)
  let reduced =
    List.map
      (fun t ->
        let s =
          Eval.multcp_exact keys t
            (Array.make params.slots (1.0 /. float_of_int ctx.range))
            ~target:params.scale
        in
        cheb_eval keys ctx.sine_coeffs s)
      halves
  in
  (* SlotToCoeff. *)
  match reduced with
  | [ u0; u1 ] ->
    let a = matmul keys ctx.s2c_diags.(0) u0 in
    let b = matmul keys ctx.s2c_diags.(1) u1 in
    add_aligned keys a b
  | _ -> assert false
